#include "core/group_index.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "obs/trace.h"

// Dual-plane grouping
// -------------------
// The pattern machinery below is templated on a "plane": the representation
// rows are projected into before grouping. The row plane keys patterns on
// std::vector<Value> (the original implementation, kept as the differential
// reference); the columnar plane keys them on std::vector<uint32_t>
// dictionary codes read out of a ColumnarView, which turns per-cell variant
// hashing and comparison into flat word operations.
//
// Both planes run the *same* algorithm skeleton — identical shard
// decomposition, identical first-occurrence pattern order, identical
// ascending-row weight accumulation, identical ascending-class-mask
// aggregation — and code equality coincides with Value::Equals exactly (the
// Dictionary interns through ValueHash/Equals, and labelled nulls get one
// code per label in a reserved band). No output depends on a hash table's
// iteration order or on the numeric value of a code, so the two planes are
// bit-identical by construction; the `columnar-vs-row-bit-identical`
// property in src/testing/properties.cc enforces this end to end.

namespace vadasa::core {

namespace {

/// Rows per ParallelFor shard in the row→pattern collapse. Fixed (never
/// derived from the pool size) so the shard decomposition — and therefore the
/// result — is identical for every thread count.
constexpr size_t kCollapseGrain = 2048;

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const { return HashValues(v); }
};
struct VecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// splitmix64-style mix over packed code rows. Only hash-table layout depends
/// on this, never results.
struct CodeVecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ v.size();
    for (const uint32_t x : v) {
      uint64_t z = (h ^ x) + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return static_cast<size_t>(h);
  }
};
struct CodeVecEq {
  bool operator()(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) const {
    return a == b;
  }
};

/// The original Value-space plane. Keys are QI projections of the table rows;
/// equality/hashing go through Value (cross-kind numeric identity included).
struct RowPlane {
  using Key = std::vector<Value>;
  using Hash = VecHash;
  using Eq = VecEq;

  const MicrodataTable* table = nullptr;
  const std::vector<size_t>* qis = nullptr;

  void Bind(const MicrodataTable& t, const std::vector<size_t>& q) {
    table = &t;
    qis = &q;
  }
  Key MakeKey(size_t r) const {
    Key p;
    p.reserve(qis->size());
    for (const size_t c : *qis) p.push_back(table->cell(r, c));
    return p;
  }
  double Weight(size_t r) const { return table->RowWeight(r); }
  static bool IsNull(const Value& v) { return v.is_null(); }
};

/// The code-space plane. Keys are packed dictionary codes read from a
/// ColumnarView; labelled nulls live in the reserved code band so the null
/// test is one unsigned compare. Bind caches raw pointers to the code and
/// weight arrays — UpdateRows rewrites them in place and never reallocates,
/// so the pointers stay valid for the life of the binding.
struct ColumnarPlane {
  using Key = std::vector<uint32_t>;
  using Hash = CodeVecHash;
  using Eq = CodeVecEq;

  std::shared_ptr<const ColumnarView> view;
  std::vector<const uint32_t*> cols;
  const double* weights = nullptr;

  void Bind(const MicrodataTable& t, const std::vector<size_t>& q) {
    view->EnsureColumns(t, q);
    cols.clear();
    cols.reserve(q.size());
    for (const size_t c : q) cols.push_back(view->Codes(c).data());
    weights = view->Weights().data();
  }
  Key MakeKey(size_t r) const {
    Key p;
    p.reserve(cols.size());
    for (const uint32_t* col : cols) p.push_back(col[r]);
    return p;
  }
  double Weight(size_t r) const { return weights[r]; }
  static bool IsNull(uint32_t code) { return IsNullCode(code); }
};

/// Null positions of a key, confined to the mask width: bit i is set iff
/// key[i] is null and i < kMaxMaybeMatchQis. The explicit bound keeps
/// `1u << i` defined for arbitrarily wide AnonSets (ValidateQiWidth rejects
/// maybe-match grouping beyond the mask width at the risk-measure level).
template <class Plane>
uint32_t NullMaskOfKey(const typename Plane::Key& key) {
  uint32_t mask = 0;
  const size_t limit = std::min(key.size(), kMaxMaybeMatchQis);
  for (size_t i = 0; i < limit; ++i) {
    if (Plane::IsNull(key[i])) mask |= (1u << i);
  }
  return mask;
}

/// Projection of a key onto the positions NOT in `mask`.
template <class Key>
Key ProjectOutKey(const Key& key, uint32_t mask) {
  Key out;
  out.reserve(key.size());
  const size_t limit = std::min(key.size(), kMaxMaybeMatchQis);
  for (size_t i = 0; i < limit; ++i) {
    if ((mask & (1u << i)) == 0) out.push_back(key[i]);
  }
  for (size_t i = limit; i < key.size(); ++i) out.push_back(key[i]);
  return out;
}

using ProjIndexKey = std::pair<uint32_t, uint32_t>;  // (class mask, union mask)

/// Plane-dependent container types of the pattern machinery.
template <class Plane>
struct PlaneTraits {
  using Key = typename Plane::Key;
  struct PatternInfo {
    Key pattern;
    uint32_t null_mask = 0;  // Bit i set iff pattern[i] is a labelled null.
    double count = 0.0;
    double weight_sum = 0.0;
    std::vector<uint32_t> rows;  // Ascending.
  };
  using KeyIdMap = std::unordered_map<Key, size_t, typename Plane::Hash, typename Plane::Eq>;
  /// Projection index of one null-mask class under one union mask:
  /// projected key -> (count, weight) totals.
  using ProjIndex =
      std::unordered_map<Key, std::pair<double, double>, typename Plane::Hash,
                         typename Plane::Eq>;
  struct Collapsed {
    std::vector<PatternInfo> patterns;
    std::vector<size_t> row_pattern;
  };
};

/// Rows collapsed into distinct strict-equality patterns. Pattern ids are
/// assigned in first-occurrence (row) order and per-pattern aggregates are
/// accumulated in row order, so the output is independent of the thread
/// count — and of the plane.
template <class Plane>
typename PlaneTraits<Plane>::Collapsed CollapseRows(const Plane& plane, size_t n,
                                                    NullSemantics semantics) {
  using Traits = PlaneTraits<Plane>;
  using Key = typename Plane::Key;
  typename Traits::Collapsed out;
  out.row_pattern.assign(n, 0);
  if (n == 0) return out;

  // Parallel phase: each fixed shard of rows builds its own pattern table —
  // the per-row projection, hashing and equality probing is the hot part.
  struct ShardPattern {
    Key values;
    std::vector<uint32_t> rows;
  };
  const size_t num_shards = (n + kCollapseGrain - 1) / kCollapseGrain;
  std::vector<std::vector<ShardPattern>> shards(num_shards);
  ThreadPool::Global().ParallelFor(
      0, n, kCollapseGrain, [&](size_t lo, size_t hi, size_t shard) {
        auto& local = shards[shard];
        typename Traits::KeyIdMap ids;
        ids.reserve((hi - lo) * 2);
        for (size_t r = lo; r < hi; ++r) {
          Key p = plane.MakeKey(r);
          auto it = ids.find(p);
          size_t id;
          if (it == ids.end()) {
            id = local.size();
            ids.emplace(p, id);
            local.push_back(ShardPattern{std::move(p), {}});
          } else {
            id = it->second;
          }
          local[id].rows.push_back(static_cast<uint32_t>(r));
        }
      });

  // Deterministic merge: shards are contiguous row ranges visited in order,
  // so global first-occurrence order equals row order and every pattern's
  // count/weight accumulates in ascending row order — exactly what a
  // sequential pass produces.
  typename Traits::KeyIdMap ids;
  ids.reserve(n * 2);
  for (auto& shard : shards) {
    for (auto& sp : shard) {
      auto it = ids.find(sp.values);
      size_t id;
      if (it == ids.end()) {
        id = out.patterns.size();
        typename Traits::PatternInfo info;
        info.null_mask =
            semantics == NullSemantics::kMaybeMatch ? NullMaskOfKey<Plane>(sp.values) : 0;
        info.pattern = std::move(sp.values);
        out.patterns.push_back(std::move(info));
        ids.emplace(out.patterns.back().pattern, id);
      } else {
        id = it->second;
      }
      typename Traits::PatternInfo& info = out.patterns[id];
      for (const uint32_t r : sp.rows) {
        info.count += 1.0;
        info.weight_sum += plane.Weight(r);
        info.rows.push_back(r);
        out.row_pattern[r] = id;
      }
    }
  }
  return out;
}

template <class Plane>
typename PlaneTraits<Plane>::ProjIndex BuildProjIndex(
    const std::vector<typename PlaneTraits<Plane>::PatternInfo>& patterns,
    const std::vector<size_t>& class_ids, uint32_t union_mask) {
  // Canonical accumulation order: class members sorted by their first row,
  // patterns emptied by deletes skipped. On a cold build this is exactly the
  // given id order (ids are assigned in first-occurrence row order and every
  // pattern is non-empty), so it changes nothing; on an incrementally
  // maintained core (UpdateRows / ApplyDelta) it reproduces the order a cold
  // rebuild of the current table would use, which keeps the floating-point
  // weight sums bit-identical to that rebuild.
  std::vector<size_t> ordered;
  ordered.reserve(class_ids.size());
  for (const size_t p : class_ids) {
    if (!patterns[p].rows.empty()) ordered.push_back(p);
  }
  std::sort(ordered.begin(), ordered.end(), [&patterns](size_t a, size_t b) {
    return patterns[a].rows[0] < patterns[b].rows[0];
  });
  typename PlaneTraits<Plane>::ProjIndex index;
  index.reserve(ordered.size() * 2);
  for (const size_t p : ordered) {
    auto key = ProjectOutKey(patterns[p].pattern, union_mask);
    auto& agg = index[std::move(key)];
    agg.first += patterns[p].count;
    agg.second += patterns[p].weight_sum;
  }
  return index;
}

/// Maybe-match aggregation over null-mask classes: for every pattern p1,
/// pat_freq[p1] / pat_wsum[p1] = mass of all patterns whose projections agree
/// with p1 outside the union of the two null sets. `memo` carries projection
/// indexes across calls (the GroupIndex invalidates dirty classes before
/// re-aggregating); missing indexes are built in parallel, and the
/// per-pattern sums run one class per task. All sums are accumulated in
/// ascending class-mask order — deterministic for any thread count.
template <class Plane>
void AggregateMaybeMatch(
    const std::vector<typename PlaneTraits<Plane>::PatternInfo>& patterns,
    const std::map<uint32_t, std::vector<size_t>>& classes,
    std::map<ProjIndexKey, typename PlaneTraits<Plane>::ProjIndex>* memo,
    std::vector<double>* pat_freq, std::vector<double>* pat_wsum) {
  using ProjIndex = typename PlaneTraits<Plane>::ProjIndex;
  pat_freq->assign(patterns.size(), 0.0);
  pat_wsum->assign(patterns.size(), 0.0);
  std::vector<uint32_t> masks;
  masks.reserve(classes.size());
  for (const auto& [mask, ids] : classes) {
    (void)ids;
    masks.push_back(mask);
  }

  // Phase 1: build the missing (class, union) projection indexes in parallel.
  std::set<ProjIndexKey> needed;
  for (const uint32_t m1 : masks) {
    for (const uint32_t m2 : masks) {
      needed.insert({m2, m1 | m2});
    }
  }
  std::vector<ProjIndexKey> missing;
  for (const ProjIndexKey& key : needed) {
    if (memo->find(key) == memo->end()) missing.push_back(key);
  }
  VADASA_METRIC_COUNT("group_index.proj_indexes_built", missing.size());
  std::vector<ProjIndex> built(missing.size());
  ThreadPool::Global().ParallelFor(0, missing.size(), 1,
                                   [&](size_t lo, size_t hi, size_t) {
                                     for (size_t i = lo; i < hi; ++i) {
                                       built[i] = BuildProjIndex<Plane>(
                                           patterns, classes.at(missing[i].first),
                                           missing[i].second);
                                     }
                                   });
  for (size_t i = 0; i < missing.size(); ++i) {
    memo->emplace(missing[i], std::move(built[i]));
  }

  // Phase 2: per receiving class, sum every member pattern's compatible mass
  // over all classes. Classes write disjoint pat_freq/pat_wsum slots.
  ThreadPool::Global().ParallelFor(
      0, masks.size(), 1, [&](size_t lo, size_t hi, size_t) {
        for (size_t ci = lo; ci < hi; ++ci) {
          const uint32_t mask1 = masks[ci];
          for (const size_t p1 : classes.at(mask1)) {
            if (patterns[p1].rows.empty()) continue;  // Emptied by a delta; no row maps here.
            double freq = 0.0;
            double wsum = 0.0;
            for (const uint32_t mask2 : masks) {
              const uint32_t u = mask1 | mask2;
              const ProjIndex& index = memo->at({mask2, u});
              const auto proj = ProjectOutKey(patterns[p1].pattern, u);
              auto hit = index.find(proj);
              if (hit != index.end()) {
                freq += hit->second.first;
                wsum += hit->second.second;
              }
            }
            (*pat_freq)[p1] = freq;
            (*pat_wsum)[p1] = wsum;
          }
        }
      });
}

/// The plane-generic pattern partition: distinct keys, row membership,
/// null-mask classes, memoized projection indexes. Shared by both GroupIndex
/// impls (and, through GroupIndex, by PatternUniverse).
template <class Plane>
struct PlaneCore {
  using Traits = PlaneTraits<Plane>;
  using Key = typename Plane::Key;
  using PatternInfo = typename Traits::PatternInfo;

  Plane plane;
  std::vector<PatternInfo> patterns;
  typename Traits::KeyIdMap pattern_ids;
  std::vector<size_t> row_pattern;
  std::map<uint32_t, std::vector<size_t>> classes;  // mask -> pattern ids

  // Memoized projection indexes, shared by Stats() re-aggregation and
  // Query(); entries of a dirty class are dropped on UpdateRows.
  mutable std::map<ProjIndexKey, typename Traits::ProjIndex> proj_indexes;

  void Build(size_t n, NullSemantics semantics) {
    auto collapsed = CollapseRows(plane, n, semantics);
    patterns = std::move(collapsed.patterns);
    row_pattern = std::move(collapsed.row_pattern);
    pattern_ids.clear();
    pattern_ids.reserve(patterns.size() * 2);
    classes.clear();
    for (size_t id = 0; id < patterns.size(); ++id) {
      pattern_ids.emplace(patterns[id].pattern, id);
      classes[patterns[id].null_mask].push_back(id);
    }
    proj_indexes.clear();
  }

  /// Re-derives a pattern's count/weight from its row list in row order, so
  /// the aggregates never drift through subtract-then-add rounding.
  void RecomputePatternAggregates(PatternInfo* info) {
    info->count = static_cast<double>(info->rows.size());
    info->weight_sum = 0.0;
    for (const uint32_t r : info->rows) info->weight_sum += plane.Weight(r);
  }

  /// Moves the given rows between patterns per their current keys; returns
  /// the dirtied null-mask classes (their projection indexes are dropped).
  std::set<uint32_t> UpdateRows(const std::vector<uint32_t>& rows,
                                NullSemantics semantics) {
    std::set<uint32_t> dirty_classes;
    for (const uint32_t r : rows) {
      Key p = plane.MakeKey(r);
      const size_t old_id = row_pattern[r];
      if (typename Plane::Eq{}(p, patterns[old_id].pattern)) continue;  // No-op change.

      // Detach the row from its old pattern.
      PatternInfo& old_pat = patterns[old_id];
      old_pat.rows.erase(std::find(old_pat.rows.begin(), old_pat.rows.end(), r));
      RecomputePatternAggregates(&old_pat);
      dirty_classes.insert(old_pat.null_mask);

      // Attach it to the (possibly new) pattern of its current projection.
      const uint32_t mask =
          semantics == NullSemantics::kMaybeMatch ? NullMaskOfKey<Plane>(p) : 0;
      auto it = pattern_ids.find(p);
      size_t id;
      if (it == pattern_ids.end()) {
        id = patterns.size();
        PatternInfo info;
        info.null_mask = mask;
        info.pattern = std::move(p);
        patterns.push_back(std::move(info));
        pattern_ids.emplace(patterns.back().pattern, id);
        classes[mask].push_back(id);
      } else {
        id = it->second;
      }
      PatternInfo& new_pat = patterns[id];
      new_pat.rows.insert(
          std::upper_bound(new_pat.rows.begin(), new_pat.rows.end(), r), r);
      RecomputePatternAggregates(&new_pat);
      dirty_classes.insert(new_pat.null_mask);
      row_pattern[r] = id;
    }
    if (dirty_classes.empty()) return dirty_classes;
    VADASA_METRIC_COUNT("group_index.dirty_classes", dirty_classes.size());

    // Dirty-group invalidation: only projection indexes involving a touched
    // null-mask class are rebuilt by the next Stats()/Query().
    size_t dropped = 0;
    for (auto it = proj_indexes.begin(); it != proj_indexes.end();) {
      if (dirty_classes.count(it->first.first) > 0) {
        it = proj_indexes.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    VADASA_METRIC_COUNT("group_index.proj_indexes_dropped", dropped);
    return dirty_classes;
  }

  /// Patches a core cloned from the pre-delta state into the post-delta
  /// partition. Precondition: `plane` is already bound to the post-delta
  /// table/view and `plan` came from the ApplyDeltaToTable call that produced
  /// that table. Deleted rows are detached and the row numbering compacted
  /// (order-preserving, so untouched patterns keep their ascending row lists
  /// and therefore their exact weight sums); updated rows are re-projected
  /// like UpdateRows; appended rows are attached at the tail. Only touched
  /// patterns are re-aggregated and only dirty classes lose projection
  /// indexes. Returns (patterns touched, null-mask classes dirtied).
  std::pair<size_t, size_t> ApplyDeltaPlan(const DeltaRowPlan& plan,
                                           NullSemantics semantics,
                                           size_t new_num_rows) {
    std::set<size_t> touched;
    std::set<uint32_t> dirty_classes;

    // 1. Detach deleted rows (old numbering). Aggregates are re-derived once
    //    at the end, not per detach.
    for (const uint32_t r : plan.deleted_old_rows) {
      PatternInfo& pat = patterns[row_pattern[r]];
      pat.rows.erase(std::find(pat.rows.begin(), pat.rows.end(), r));
      touched.insert(row_pattern[r]);
      dirty_classes.insert(pat.null_mask);
    }

    // 2. Order-preserving compaction of the row numbering. Relative order of
    //    survivors is unchanged, so every pattern's row list stays ascending
    //    and its weight-accumulation sequence — hence its float sum — is the
    //    one a cold rebuild would produce.
    if (!plan.deleted_old_rows.empty()) {
      const size_t old_n = row_pattern.size();
      std::vector<uint32_t> del_before(old_n, 0);
      {
        size_t next_del = 0;
        uint32_t count = 0;
        for (size_t r = 0; r < old_n; ++r) {
          del_before[r] = count;
          if (next_del < plan.deleted_old_rows.size() &&
              plan.deleted_old_rows[next_del] == r) {
            ++count;
            ++next_del;
          }
        }
      }
      std::vector<size_t> compacted;
      compacted.reserve(new_num_rows);
      size_t next_del = 0;
      for (size_t r = 0; r < old_n; ++r) {
        if (next_del < plan.deleted_old_rows.size() &&
            plan.deleted_old_rows[next_del] == r) {
          ++next_del;
          continue;
        }
        compacted.push_back(row_pattern[r]);
      }
      row_pattern = std::move(compacted);
      for (PatternInfo& pat : patterns) {
        for (uint32_t& r : pat.rows) r -= del_before[r];
      }
    }
    row_pattern.resize(new_num_rows, 0);

    // 3. Re-project updated rows (new numbering). Unlike UpdateRows, a
    //    key-preserving update still dirties its pattern: a delta may change
    //    the row's sampling weight without changing its QI projection.
    for (const uint32_t r : plan.updated_new_rows) {
      const size_t old_id = row_pattern[r];
      touched.insert(old_id);
      dirty_classes.insert(patterns[old_id].null_mask);
      Key p = plane.MakeKey(r);
      if (typename Plane::Eq{}(p, patterns[old_id].pattern)) continue;
      PatternInfo& old_pat = patterns[old_id];
      old_pat.rows.erase(std::find(old_pat.rows.begin(), old_pat.rows.end(), r));
      const size_t id = AttachKey(std::move(p), r, semantics, /*at_tail=*/false);
      touched.insert(id);
      dirty_classes.insert(patterns[id].null_mask);
      row_pattern[r] = id;
    }

    // 4. Attach appended rows at the tail, in ascending row order.
    for (size_t r = new_num_rows - plan.appended_rows; r < new_num_rows; ++r) {
      const size_t id = AttachKey(plane.MakeKey(r), static_cast<uint32_t>(r),
                                  semantics, /*at_tail=*/true);
      touched.insert(id);
      dirty_classes.insert(patterns[id].null_mask);
      row_pattern[r] = id;
    }

    // 5. Re-derive aggregates of touched patterns only — the delta's savings:
    //    every other pattern keeps its rows, count and weight sum verbatim.
    for (const size_t id : touched) RecomputePatternAggregates(&patterns[id]);

    // 6. Dirty-group invalidation, exactly as in UpdateRows.
    size_t dropped = 0;
    for (auto it = proj_indexes.begin(); it != proj_indexes.end();) {
      if (dirty_classes.count(it->first.first) > 0) {
        it = proj_indexes.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    VADASA_METRIC_COUNT("group_index.proj_indexes_dropped", dropped);
    return {touched.size(), dirty_classes.size()};
  }

  /// Finds or creates the pattern of `p` and inserts row `r` into its list
  /// (push_back when `at_tail` — appends carry the largest indices).
  size_t AttachKey(Key p, uint32_t r, NullSemantics semantics, bool at_tail) {
    const uint32_t mask =
        semantics == NullSemantics::kMaybeMatch ? NullMaskOfKey<Plane>(p) : 0;
    auto it = pattern_ids.find(p);
    size_t id;
    if (it == pattern_ids.end()) {
      id = patterns.size();
      PatternInfo info;
      info.null_mask = mask;
      info.pattern = std::move(p);
      patterns.push_back(std::move(info));
      pattern_ids.emplace(patterns.back().pattern, id);
      classes[mask].push_back(id);
    } else {
      id = it->second;
    }
    PatternInfo& pat = patterns[id];
    if (at_tail) {
      pat.rows.push_back(r);
    } else {
      pat.rows.insert(std::upper_bound(pat.rows.begin(), pat.rows.end(), r), r);
    }
    return id;
  }

  void RecomputeStats(size_t num_rows, NullSemantics semantics,
                      GroupStats* stats) const {
    stats->frequency.assign(num_rows, 0.0);
    stats->weight_sum.assign(num_rows, 0.0);
    std::vector<double> pat_freq(patterns.size(), 0.0);
    std::vector<double> pat_wsum(patterns.size(), 0.0);
    if (semantics == NullSemantics::kStandard) {
      for (size_t p = 0; p < patterns.size(); ++p) {
        pat_freq[p] = patterns[p].count;
        pat_wsum[p] = patterns[p].weight_sum;
      }
    } else {
      AggregateMaybeMatch<Plane>(patterns, classes, &proj_indexes, &pat_freq,
                                 &pat_wsum);
    }
    for (size_t r = 0; r < num_rows; ++r) {
      stats->frequency[r] = pat_freq[row_pattern[r]];
      stats->weight_sum[r] = pat_wsum[row_pattern[r]];
    }
  }

  PatternMass QueryKey(const Key& key, NullSemantics semantics) const {
    PatternMass mass;
    if (semantics == NullSemantics::kStandard) {
      auto it = pattern_ids.find(key);
      if (it != pattern_ids.end()) {
        mass.count = patterns[it->second].count;
        mass.weight = patterns[it->second].weight_sum;
      }
      return mass;
    }
    const uint32_t qmask = NullMaskOfKey<Plane>(key);
    for (const auto& [cmask, ids] : classes) {
      const uint32_t u = qmask | cmask;
      const ProjIndexKey pkey{cmask, u};
      auto it = proj_indexes.find(pkey);
      if (it == proj_indexes.end()) {
        VADASA_METRIC_COUNT("group_index.proj_indexes_built", 1);
        it = proj_indexes.emplace(pkey, BuildProjIndex<Plane>(patterns, ids, u)).first;
      }
      const auto proj = ProjectOutKey(key, u);
      auto hit = it->second.find(proj);
      if (hit != it->second.end()) {
        mass.count += hit->second.first;
        mass.weight += hit->second.second;
      }
    }
    return mass;
  }
};

template <class Plane>
GroupStats ComputeStatsOnPlane(const Plane& plane, size_t n, NullSemantics semantics) {
  GroupStats stats;
  stats.frequency.assign(n, 0.0);
  stats.weight_sum.assign(n, 0.0);

  // 1. Collapse rows into distinct patterns (strict equality; null labels
  //    distinguish). Under kStandard this already yields the answer.
  auto collapsed = CollapseRows(plane, n, semantics);
  const auto& patterns = collapsed.patterns;

  std::vector<double> pat_freq(patterns.size(), 0.0);
  std::vector<double> pat_wsum(patterns.size(), 0.0);

  if (semantics == NullSemantics::kStandard) {
    for (size_t p = 0; p < patterns.size(); ++p) {
      pat_freq[p] = patterns[p].count;
      pat_wsum[p] = patterns[p].weight_sum;
    }
  } else {
    // 2. Maybe-match: group patterns by null-mask class and exchange mass
    //    between classes through shared projections.
    std::map<uint32_t, std::vector<size_t>> classes;  // mask -> pattern ids
    for (size_t p = 0; p < patterns.size(); ++p) {
      classes[patterns[p].null_mask].push_back(p);
    }
    std::map<ProjIndexKey, typename PlaneTraits<Plane>::ProjIndex> memo;
    AggregateMaybeMatch<Plane>(patterns, classes, &memo, &pat_freq, &pat_wsum);
  }

  for (size_t r = 0; r < n; ++r) {
    stats.frequency[r] = pat_freq[collapsed.row_pattern[r]];
    stats.weight_sum[r] = pat_wsum[collapsed.row_pattern[r]];
  }
  return stats;
}

}  // namespace

Status ValidateQiWidth(const std::vector<size_t>& qi_columns, NullSemantics semantics) {
  if (semantics == NullSemantics::kMaybeMatch &&
      qi_columns.size() > kMaxMaybeMatchQis) {
    return Status::InvalidArgument(
        "maybe-match grouping supports at most " +
        std::to_string(kMaxMaybeMatchQis) + " quasi-identifiers, got " +
        std::to_string(qi_columns.size()) +
        "; use NullSemantics::kStandard or restrict the AnonSet");
  }
  return Status::OK();
}

GroupStats ComputeGroupStats(const MicrodataTable& table,
                             const std::vector<size_t>& qi_columns,
                             NullSemantics semantics,
                             std::shared_ptr<const ColumnarView> shared_view) {
  const size_t n = table.num_rows();
  if (ActiveDataPlane() == DataPlane::kColumnar) {
    std::shared_ptr<const ColumnarView> view = std::move(shared_view);
    if (view == nullptr || view->num_rows() != n) {
      view = std::make_shared<ColumnarView>(table);
    }
    ColumnarPlane plane;
    plane.view = std::move(view);
    plane.Bind(table, qi_columns);
    return ComputeStatsOnPlane(plane, n, semantics);
  }
  RowPlane plane;
  plane.Bind(table, qi_columns);
  return ComputeStatsOnPlane(plane, n, semantics);
}

EquivalenceClassStats ComputeEquivalenceClasses(
    const MicrodataTable& table, const std::vector<size_t>& qi_columns) {
  EquivalenceClassStats stats;
  stats.histogram.assign(10, 0);
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> classes;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(qi_columns.size());
    for (const size_t c : qi_columns) key.push_back(table.cell(r, c));
    classes[std::move(key)]++;
  }
  stats.num_classes = classes.size();
  if (classes.empty()) return stats;
  stats.min_class_size = table.num_rows();
  for (const auto& [key, size] : classes) {
    (void)key;
    if (size == 1) ++stats.uniques;
    stats.min_class_size = std::min(stats.min_class_size, size);
    stats.max_class_size = std::max(stats.max_class_size, size);
    stats.histogram[std::min<size_t>(size, 10) - 1]++;
  }
  stats.mean_class_size =
      static_cast<double>(table.num_rows()) / static_cast<double>(classes.size());
  return stats;
}

double CountMatches(const MicrodataTable& table, const std::vector<size_t>& qi_columns,
                    const std::vector<Value>& pattern, NullSemantics semantics) {
  double count = 0.0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool match = true;
    for (size_t i = 0; i < qi_columns.size() && match; ++i) {
      const Value& cell = table.cell(r, qi_columns[i]);
      match = semantics == NullSemantics::kMaybeMatch ? cell.MaybeEquals(pattern[i])
                                                      : cell.Equals(pattern[i]);
    }
    if (match) count += 1.0;
  }
  return count;
}

// ---------------------------------------------------------------------------
// GroupIndex: the incremental index behind the cycle's risk-evaluation loop.
// One abstract Impl per plane; both delegate to the shared PlaneCore.
// ---------------------------------------------------------------------------

struct GroupIndex::Impl {
  std::vector<size_t> qi_columns;
  NullSemantics semantics = NullSemantics::kMaybeMatch;
  DataPlane plane = DataPlane::kRow;
  size_t num_rows = 0;

  mutable GroupStats stats;
  mutable bool stats_dirty = true;

  size_t full_builds = 0;
  size_t incremental_updates = 0;

  virtual ~Impl() = default;
  virtual void Build(const MicrodataTable& table) = 0;
  /// Precondition: the table shape matches num_rows (GroupIndex::UpdateRows
  /// rebuilds otherwise).
  virtual void Update(const MicrodataTable& table, const std::vector<uint32_t>& rows) = 0;
  virtual void Recompute() const = 0;
  virtual PatternMass QueryPattern(const std::vector<Value>& pattern) const = 0;
  virtual size_t pattern_count() const = 0;
  virtual void AdoptSharedView(std::shared_ptr<ColumnarView> view) { (void)view; }
  /// A patched copy of this impl over the post-delta table (see
  /// GroupIndex::ApplyDelta). Never mutates *this.
  virtual std::unique_ptr<Impl> CloneForDelta(const MicrodataTable& new_table,
                                              const DeltaRowPlan& plan) const = 0;
  virtual std::shared_ptr<const ColumnarView> SharedViewHandle() const { return nullptr; }

 protected:
  /// Shared bookkeeping of CloneForDelta: copies the plane-independent fields
  /// onto `clone` and counts the delta as one absorbed incremental update.
  void CopyMetaTo(Impl* clone, size_t new_num_rows) const {
    clone->qi_columns = qi_columns;
    clone->semantics = semantics;
    clone->plane = plane;
    clone->num_rows = new_num_rows;
    clone->stats_dirty = true;
    clone->full_builds = full_builds;
    clone->incremental_updates = incremental_updates + 1;
  }
};

namespace {

struct RowImpl final : GroupIndex::Impl {
  PlaneCore<RowPlane> core;

  void Build(const MicrodataTable& table) override {
    obs::Span span("group_index.build");
    VADASA_METRIC_COUNT("group_index.full_builds", 1);
    num_rows = table.num_rows();
    core.plane.Bind(table, qi_columns);
    core.Build(num_rows, semantics);
    stats_dirty = true;
    ++full_builds;
  }

  void Update(const MicrodataTable& table, const std::vector<uint32_t>& rows) override {
    core.plane.Bind(table, qi_columns);
    if (!core.UpdateRows(rows, semantics).empty()) stats_dirty = true;
  }

  void Recompute() const override {
    obs::Span span("group_index.recompute_stats");
    core.RecomputeStats(num_rows, semantics, &stats);
    stats_dirty = false;
  }

  PatternMass QueryPattern(const std::vector<Value>& pattern) const override {
    return core.QueryKey(pattern, semantics);
  }

  size_t pattern_count() const override { return core.patterns.size(); }

  std::unique_ptr<GroupIndex::Impl> CloneForDelta(
      const MicrodataTable& new_table, const DeltaRowPlan& plan) const override {
    auto clone = std::make_unique<RowImpl>();
    CopyMetaTo(clone.get(), new_table.num_rows());
    clone->core = core;
    clone->core.plane.Bind(new_table, clone->qi_columns);
    const auto [dirtied, classes_dirtied] =
        clone->core.ApplyDeltaPlan(plan, semantics, clone->num_rows);
    VADASA_METRIC_COUNT("delta.groups_dirtied", dirtied);
    VADASA_METRIC_COUNT("delta.groups_recomputed", dirtied);
    VADASA_METRIC_COUNT("delta.classes_dirtied", classes_dirtied);
    return clone;
  }
};

struct ColumnarImpl final : GroupIndex::Impl {
  PlaneCore<ColumnarPlane> core;
  /// The mutable handle to the view the plane reads. When owns_view, this
  /// index refreshes the view's codes itself inside Update; otherwise the
  /// owner (RiskEvalCache) refreshes once per batch before calling it.
  std::shared_ptr<ColumnarView> view;
  bool owns_view = true;

  void Rebind(const MicrodataTable& table) {
    if (view == nullptr || view->num_rows() != table.num_rows()) {
      view = std::make_shared<ColumnarView>(table);
    }
    core.plane.view = view;
    core.plane.Bind(table, qi_columns);
  }

  void Build(const MicrodataTable& table) override {
    obs::Span span("group_index.build");
    VADASA_METRIC_COUNT("group_index.full_builds", 1);
    num_rows = table.num_rows();
    Rebind(table);
    core.Build(num_rows, semantics);
    stats_dirty = true;
    ++full_builds;
  }

  void Update(const MicrodataTable& table, const std::vector<uint32_t>& rows) override {
    if (core.plane.view.get() != view.get()) {
      // The shared view was swapped (AdoptSharedView) — rebind and rebuild.
      Build(table);
      return;
    }
    if (owns_view) view->UpdateRows(table, rows);
    if (!core.UpdateRows(rows, semantics).empty()) stats_dirty = true;
  }

  void Recompute() const override {
    obs::Span span("group_index.recompute_stats");
    core.RecomputeStats(num_rows, semantics, &stats);
    stats_dirty = false;
  }

  PatternMass QueryPattern(const std::vector<Value>& pattern) const override {
    std::vector<uint32_t> key;
    key.reserve(pattern.size());
    for (size_t i = 0; i < pattern.size(); ++i) {
      key.push_back(view->CodeForQuery(qi_columns[i], pattern[i]));
    }
    return core.QueryKey(key, semantics);
  }

  size_t pattern_count() const override { return core.patterns.size(); }

  void AdoptSharedView(std::shared_ptr<ColumnarView> v) override {
    view = std::move(v);
  }

  std::shared_ptr<const ColumnarView> SharedViewHandle() const override {
    return view;
  }

  std::unique_ptr<GroupIndex::Impl> CloneForDelta(
      const MicrodataTable& new_table, const DeltaRowPlan& plan) const override {
    auto clone = std::make_unique<ColumnarImpl>();
    CopyMetaTo(clone.get(), new_table.num_rows());
    clone->core = core;
    // Delta-clone the view: inherited dictionaries and code arrays, deleted
    // rows compacted out, changed rows re-interned (see columnar.h). Updated
    // rows are already in new-table numbering; appends occupy the tail.
    std::vector<uint32_t> changed = plan.updated_new_rows;
    changed.reserve(changed.size() + plan.appended_rows);
    for (size_t r = new_table.num_rows() - plan.appended_rows;
         r < new_table.num_rows(); ++r) {
      changed.push_back(static_cast<uint32_t>(r));
    }
    clone->view = std::make_shared<ColumnarView>(*view, new_table,
                                                 plan.deleted_old_rows, changed);
    clone->owns_view = true;
    clone->core.plane.view = clone->view;
    clone->core.plane.Bind(new_table, clone->qi_columns);
    const auto [dirtied, classes_dirtied] =
        clone->core.ApplyDeltaPlan(plan, semantics, clone->num_rows);
    VADASA_METRIC_COUNT("delta.groups_dirtied", dirtied);
    VADASA_METRIC_COUNT("delta.groups_recomputed", dirtied);
    VADASA_METRIC_COUNT("delta.classes_dirtied", classes_dirtied);
    return clone;
  }
};

}  // namespace

GroupIndex::GroupIndex(const MicrodataTable& table, std::vector<size_t> qi_columns,
                       NullSemantics semantics)
    : GroupIndex(table, std::move(qi_columns), semantics, nullptr) {}

GroupIndex::GroupIndex(const MicrodataTable& table, std::vector<size_t> qi_columns,
                       NullSemantics semantics,
                       std::shared_ptr<ColumnarView> shared_view) {
  if (ActiveDataPlane() == DataPlane::kColumnar) {
    auto impl = std::make_unique<ColumnarImpl>();
    if (shared_view != nullptr) {
      impl->view = std::move(shared_view);
      impl->owns_view = false;
    }
    impl->plane = DataPlane::kColumnar;
    impl_ = std::move(impl);
  } else {
    auto impl = std::make_unique<RowImpl>();
    impl->plane = DataPlane::kRow;
    impl_ = std::move(impl);
  }
  impl_->qi_columns = std::move(qi_columns);
  impl_->semantics = semantics;
  impl_->Build(table);
}

GroupIndex::~GroupIndex() = default;

void GroupIndex::UpdateRows(const MicrodataTable& table,
                            const std::vector<uint32_t>& rows) {
  Impl& im = *impl_;
  if (table.num_rows() != im.num_rows) {
    // Shape changed under us — incremental bookkeeping is void.
    im.Build(table);
    return;
  }
  obs::Span span("group_index.update_rows");
  ++im.incremental_updates;
  VADASA_METRIC_COUNT("group_index.incremental_updates", 1);
  im.Update(table, rows);
}

std::unique_ptr<GroupIndex> GroupIndex::ApplyDelta(const MicrodataTable& new_table,
                                                   const DeltaRowPlan& plan) const {
  obs::Span span("group_index.apply_delta");
  VADASA_METRIC_COUNT("delta.index_applies", 1);
  auto out = std::unique_ptr<GroupIndex>(new GroupIndex());
  out->impl_ = impl_->CloneForDelta(new_table, plan);
  return out;
}

const GroupStats& GroupIndex::Stats() const {
  if (impl_->stats_dirty) impl_->Recompute();
  return impl_->stats;
}

PatternMass GroupIndex::Query(const std::vector<Value>& pattern) const {
  if (pattern.size() != impl_->qi_columns.size()) return PatternMass{};
  return impl_->QueryPattern(pattern);
}

const std::vector<size_t>& GroupIndex::qi_columns() const { return impl_->qi_columns; }
NullSemantics GroupIndex::semantics() const { return impl_->semantics; }
size_t GroupIndex::num_rows() const { return impl_->num_rows; }
size_t GroupIndex::num_patterns() const { return impl_->pattern_count(); }
DataPlane GroupIndex::data_plane() const { return impl_->plane; }
void GroupIndex::AdoptView(std::shared_ptr<ColumnarView> view) {
  impl_->AdoptSharedView(std::move(view));
}
std::shared_ptr<const ColumnarView> GroupIndex::shared_view() const {
  return impl_->SharedViewHandle();
}
size_t GroupIndex::full_builds() const { return impl_->full_builds; }
size_t GroupIndex::incremental_updates() const { return impl_->incremental_updates; }

// ---------------------------------------------------------------------------
// PatternUniverse: an immutable what-if snapshot. A thin wrapper over
// GroupIndex (shared_ptr for cheap copies) — both planes, one code path.
// ---------------------------------------------------------------------------

struct PatternUniverse::Impl {
  std::unique_ptr<GroupIndex> index;
};

PatternUniverse::PatternUniverse(const MicrodataTable& table,
                                 std::vector<size_t> qi_columns,
                                 NullSemantics semantics) {
  impl_ = std::make_shared<Impl>();
  impl_->index = std::make_unique<GroupIndex>(table, std::move(qi_columns), semantics);
  pattern_count_ = impl_->index->num_patterns();
}

PatternUniverse::Mass PatternUniverse::Query(const std::vector<Value>& pattern) const {
  return impl_->index->Query(pattern);
}

// ---------------------------------------------------------------------------
// RiskEvalCache
// ---------------------------------------------------------------------------

struct RiskEvalCache::Impl {
  struct Key {
    std::vector<size_t> qis;
    NullSemantics semantics;
    bool operator<(const Key& other) const {
      if (semantics != other.semantics) return semantics < other.semantics;
      return qis < other.qis;
    }
  };
  std::map<Key, std::unique_ptr<GroupIndex>> indexes;
  std::map<std::string, std::shared_ptr<void>> memos;
  uint64_t version = 0;

  /// One columnar materialization shared by every index of this cache (and
  /// by the cycle's pattern guards). Null under the row plane.
  std::shared_ptr<ColumnarView> view;

  std::shared_ptr<ColumnarView> EnsureView(const MicrodataTable& table) {
    if (ActiveDataPlane() != DataPlane::kColumnar) return nullptr;
    if (view == nullptr || view->num_rows() != table.num_rows()) {
      view = std::make_shared<ColumnarView>(table);
    }
    return view;
  }
};

RiskEvalCache::RiskEvalCache() : impl_(std::make_unique<Impl>()) {}
RiskEvalCache::~RiskEvalCache() = default;

GroupIndex& RiskEvalCache::Index(const MicrodataTable& table,
                                 const std::vector<size_t>& qi_columns,
                                 NullSemantics semantics) {
  std::shared_ptr<ColumnarView> shared = impl_->EnsureView(table);
  const Impl::Key key{qi_columns, semantics};
  auto it = impl_->indexes.find(key);
  if (it == impl_->indexes.end()) {
    VADASA_METRIC_COUNT("risk_cache.index_misses", 1);
    it = impl_->indexes
             .emplace(key, std::make_unique<GroupIndex>(table, qi_columns, semantics,
                                                        std::move(shared)))
             .first;
  } else if (it->second->num_rows() != table.num_rows() ||
             it->second->data_plane() != ActiveDataPlane()) {
    VADASA_METRIC_COUNT("risk_cache.index_misses", 1);
    it->second = std::make_unique<GroupIndex>(table, qi_columns, semantics,
                                              std::move(shared));
  } else {
    VADASA_METRIC_COUNT("risk_cache.index_hits", 1);
  }
  return *it->second;
}

const GroupStats& RiskEvalCache::Stats(const MicrodataTable& table,
                                       const std::vector<size_t>& qi_columns,
                                       NullSemantics semantics) {
  return Index(table, qi_columns, semantics).Stats();
}

void RiskEvalCache::NotifyRowsChanged(const MicrodataTable& table,
                                      const std::vector<uint32_t>& rows) {
  ++impl_->version;
  impl_->memos.clear();
  if (impl_->view != nullptr) {
    if (table.num_rows() != impl_->view->num_rows()) {
      // Shape changed: rematerialize and hand the fresh view to every index
      // (each rebuilds from it on its UpdateRows below).
      impl_->view = std::make_shared<ColumnarView>(table);
      for (auto& [key, index] : impl_->indexes) {
        (void)key;
        index->AdoptView(impl_->view);
      }
    } else {
      // One in-place code refresh serves all indexes.
      impl_->view->UpdateRows(table, rows);
    }
  }
  for (auto& [key, index] : impl_->indexes) {
    (void)key;
    index->UpdateRows(table, rows);
  }
}

std::shared_ptr<const ColumnarView> RiskEvalCache::SharedView(
    const MicrodataTable& table) {
  return impl_->EnsureView(table);
}

uint64_t RiskEvalCache::version() const { return impl_->version; }

std::shared_ptr<void> RiskEvalCache::Memo(const std::string& key) const {
  auto it = impl_->memos.find(key);
  if (it == impl_->memos.end()) {
    VADASA_METRIC_COUNT("risk_cache.memo_misses", 1);
    return nullptr;
  }
  VADASA_METRIC_COUNT("risk_cache.memo_hits", 1);
  return it->second;
}

void RiskEvalCache::SetMemo(const std::string& key, std::shared_ptr<void> value) {
  impl_->memos[key] = std::move(value);
}

size_t RiskEvalCache::full_builds() const {
  size_t total = 0;
  for (const auto& [key, index] : impl_->indexes) {
    (void)key;
    total += index->full_builds();
  }
  return total;
}

size_t RiskEvalCache::incremental_updates() const {
  size_t total = 0;
  for (const auto& [key, index] : impl_->indexes) {
    (void)key;
    total += index->incremental_updates();
  }
  return total;
}

}  // namespace vadasa::core
