#include "core/group_index.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace vadasa::core {

namespace {

/// Rows per ParallelFor shard in the row→pattern collapse. Fixed (never
/// derived from the pool size) so the shard decomposition — and therefore the
/// result — is identical for every thread count.
constexpr size_t kCollapseGrain = 2048;

struct PatternInfo {
  std::vector<Value> pattern;
  uint32_t null_mask = 0;  // Bit i set iff pattern[i] is a labelled null.
  double count = 0.0;
  double weight_sum = 0.0;
  std::vector<uint32_t> rows;  // Ascending.
};

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const { return HashValues(v); }
};
struct VecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// Null positions of a pattern, confined to the mask width: bit i is set iff
/// pattern[i] is null and i < kMaxMaybeMatchQis. The explicit bound keeps
/// `1u << i` defined for arbitrarily wide AnonSets (ValidateQiWidth rejects
/// maybe-match grouping beyond the mask width at the risk-measure level).
uint32_t NullMaskOf(const std::vector<Value>& pattern) {
  uint32_t mask = 0;
  const size_t limit = std::min(pattern.size(), kMaxMaybeMatchQis);
  for (size_t i = 0; i < limit; ++i) {
    if (pattern[i].is_null()) mask |= (1u << i);
  }
  return mask;
}

/// Projection of a pattern onto the positions NOT in `mask`.
std::vector<Value> ProjectOut(const std::vector<Value>& pattern, uint32_t mask) {
  std::vector<Value> out;
  out.reserve(pattern.size());
  const size_t limit = std::min(pattern.size(), kMaxMaybeMatchQis);
  for (size_t i = 0; i < limit; ++i) {
    if ((mask & (1u << i)) == 0) out.push_back(pattern[i]);
  }
  for (size_t i = limit; i < pattern.size(); ++i) out.push_back(pattern[i]);
  return out;
}

/// Rows collapsed into distinct strict-equality patterns. Pattern ids are
/// assigned in first-occurrence (row) order and per-pattern aggregates are
/// accumulated in row order, so the output is independent of the thread
/// count.
struct CollapsedPatterns {
  std::vector<PatternInfo> patterns;
  std::vector<size_t> row_pattern;
};

CollapsedPatterns CollapseRows(const MicrodataTable& table,
                               const std::vector<size_t>& qi_columns,
                               NullSemantics semantics) {
  const size_t n = table.num_rows();
  CollapsedPatterns out;
  out.row_pattern.assign(n, 0);
  if (n == 0) return out;

  // Parallel phase: each fixed shard of rows builds its own pattern table —
  // the per-row projection, hashing and equality probing is the hot part.
  struct ShardPattern {
    std::vector<Value> values;
    std::vector<uint32_t> rows;
  };
  const size_t num_shards = (n + kCollapseGrain - 1) / kCollapseGrain;
  std::vector<std::vector<ShardPattern>> shards(num_shards);
  ThreadPool::Global().ParallelFor(
      0, n, kCollapseGrain, [&](size_t lo, size_t hi, size_t shard) {
        auto& local = shards[shard];
        std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> ids;
        ids.reserve((hi - lo) * 2);
        for (size_t r = lo; r < hi; ++r) {
          std::vector<Value> p;
          p.reserve(qi_columns.size());
          for (const size_t c : qi_columns) p.push_back(table.cell(r, c));
          auto it = ids.find(p);
          size_t id;
          if (it == ids.end()) {
            id = local.size();
            ids.emplace(p, id);
            local.push_back(ShardPattern{std::move(p), {}});
          } else {
            id = it->second;
          }
          local[id].rows.push_back(static_cast<uint32_t>(r));
        }
      });

  // Deterministic merge: shards are contiguous row ranges visited in order,
  // so global first-occurrence order equals row order and every pattern's
  // count/weight accumulates in ascending row order — exactly what a
  // sequential pass produces.
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> ids;
  ids.reserve(n * 2);
  for (auto& shard : shards) {
    for (auto& sp : shard) {
      auto it = ids.find(sp.values);
      size_t id;
      if (it == ids.end()) {
        id = out.patterns.size();
        PatternInfo info;
        info.null_mask =
            semantics == NullSemantics::kMaybeMatch ? NullMaskOf(sp.values) : 0;
        info.pattern = std::move(sp.values);
        out.patterns.push_back(std::move(info));
        ids.emplace(out.patterns.back().pattern, id);
      } else {
        id = it->second;
      }
      PatternInfo& info = out.patterns[id];
      for (const uint32_t r : sp.rows) {
        info.count += 1.0;
        info.weight_sum += table.RowWeight(r);
        info.rows.push_back(r);
        out.row_pattern[r] = id;
      }
    }
  }
  return out;
}

/// Projection index of one null-mask class under one union mask: projected
/// pattern -> (count, weight) totals.
using ProjIndex =
    std::unordered_map<std::vector<Value>, std::pair<double, double>, VecHash, VecEq>;
using ProjIndexKey = std::pair<uint32_t, uint32_t>;  // (class mask, union mask)

ProjIndex BuildProjIndex(const std::vector<PatternInfo>& patterns,
                         const std::vector<size_t>& class_ids, uint32_t union_mask) {
  ProjIndex index;
  index.reserve(class_ids.size() * 2);
  for (const size_t p : class_ids) {
    auto key = ProjectOut(patterns[p].pattern, union_mask);
    auto& agg = index[std::move(key)];
    agg.first += patterns[p].count;
    agg.second += patterns[p].weight_sum;
  }
  return index;
}

/// Maybe-match aggregation over null-mask classes: for every pattern p1,
/// pat_freq[p1] / pat_wsum[p1] = mass of all patterns whose projections agree
/// with p1 outside the union of the two null sets. `memo` carries projection
/// indexes across calls (the GroupIndex invalidates dirty classes before
/// re-aggregating); missing indexes are built in parallel, and the
/// per-pattern sums run one class per task. All sums are accumulated in
/// ascending class-mask order — deterministic for any thread count.
void AggregateMaybeMatch(const std::vector<PatternInfo>& patterns,
                         const std::map<uint32_t, std::vector<size_t>>& classes,
                         std::map<ProjIndexKey, ProjIndex>* memo,
                         std::vector<double>* pat_freq, std::vector<double>* pat_wsum) {
  pat_freq->assign(patterns.size(), 0.0);
  pat_wsum->assign(patterns.size(), 0.0);
  std::vector<uint32_t> masks;
  masks.reserve(classes.size());
  for (const auto& [mask, ids] : classes) {
    (void)ids;
    masks.push_back(mask);
  }

  // Phase 1: build the missing (class, union) projection indexes in parallel.
  std::set<ProjIndexKey> needed;
  for (const uint32_t m1 : masks) {
    for (const uint32_t m2 : masks) {
      needed.insert({m2, m1 | m2});
    }
  }
  std::vector<ProjIndexKey> missing;
  for (const ProjIndexKey& key : needed) {
    if (memo->find(key) == memo->end()) missing.push_back(key);
  }
  VADASA_METRIC_COUNT("group_index.proj_indexes_built", missing.size());
  std::vector<ProjIndex> built(missing.size());
  ThreadPool::Global().ParallelFor(0, missing.size(), 1,
                                   [&](size_t lo, size_t hi, size_t) {
                                     for (size_t i = lo; i < hi; ++i) {
                                       built[i] = BuildProjIndex(
                                           patterns, classes.at(missing[i].first),
                                           missing[i].second);
                                     }
                                   });
  for (size_t i = 0; i < missing.size(); ++i) {
    memo->emplace(missing[i], std::move(built[i]));
  }

  // Phase 2: per receiving class, sum every member pattern's compatible mass
  // over all classes. Classes write disjoint pat_freq/pat_wsum slots.
  ThreadPool::Global().ParallelFor(
      0, masks.size(), 1, [&](size_t lo, size_t hi, size_t) {
        for (size_t ci = lo; ci < hi; ++ci) {
          const uint32_t mask1 = masks[ci];
          for (const size_t p1 : classes.at(mask1)) {
            double freq = 0.0;
            double wsum = 0.0;
            for (const uint32_t mask2 : masks) {
              const uint32_t u = mask1 | mask2;
              const ProjIndex& index = memo->at({mask2, u});
              const auto proj = ProjectOut(patterns[p1].pattern, u);
              auto hit = index.find(proj);
              if (hit != index.end()) {
                freq += hit->second.first;
                wsum += hit->second.second;
              }
            }
            (*pat_freq)[p1] = freq;
            (*pat_wsum)[p1] = wsum;
          }
        }
      });
}

}  // namespace

Status ValidateQiWidth(const std::vector<size_t>& qi_columns, NullSemantics semantics) {
  if (semantics == NullSemantics::kMaybeMatch &&
      qi_columns.size() > kMaxMaybeMatchQis) {
    return Status::InvalidArgument(
        "maybe-match grouping supports at most " +
        std::to_string(kMaxMaybeMatchQis) + " quasi-identifiers, got " +
        std::to_string(qi_columns.size()) +
        "; use NullSemantics::kStandard or restrict the AnonSet");
  }
  return Status::OK();
}

GroupStats ComputeGroupStats(const MicrodataTable& table,
                             const std::vector<size_t>& qi_columns,
                             NullSemantics semantics) {
  const size_t n = table.num_rows();
  GroupStats stats;
  stats.frequency.assign(n, 0.0);
  stats.weight_sum.assign(n, 0.0);

  // 1. Collapse rows into distinct patterns (strict equality; null labels
  //    distinguish). Under kStandard this already yields the answer.
  CollapsedPatterns collapsed = CollapseRows(table, qi_columns, semantics);
  const std::vector<PatternInfo>& patterns = collapsed.patterns;

  std::vector<double> pat_freq(patterns.size(), 0.0);
  std::vector<double> pat_wsum(patterns.size(), 0.0);

  if (semantics == NullSemantics::kStandard) {
    for (size_t p = 0; p < patterns.size(); ++p) {
      pat_freq[p] = patterns[p].count;
      pat_wsum[p] = patterns[p].weight_sum;
    }
  } else {
    // 2. Maybe-match: group patterns by null-mask class and exchange mass
    //    between classes through shared projections.
    std::map<uint32_t, std::vector<size_t>> classes;  // mask -> pattern ids
    for (size_t p = 0; p < patterns.size(); ++p) {
      classes[patterns[p].null_mask].push_back(p);
    }
    std::map<ProjIndexKey, ProjIndex> memo;
    AggregateMaybeMatch(patterns, classes, &memo, &pat_freq, &pat_wsum);
  }

  for (size_t r = 0; r < n; ++r) {
    stats.frequency[r] = pat_freq[collapsed.row_pattern[r]];
    stats.weight_sum[r] = pat_wsum[collapsed.row_pattern[r]];
  }
  return stats;
}

EquivalenceClassStats ComputeEquivalenceClasses(
    const MicrodataTable& table, const std::vector<size_t>& qi_columns) {
  EquivalenceClassStats stats;
  stats.histogram.assign(10, 0);
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> classes;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(qi_columns.size());
    for (const size_t c : qi_columns) key.push_back(table.cell(r, c));
    classes[std::move(key)]++;
  }
  stats.num_classes = classes.size();
  if (classes.empty()) return stats;
  stats.min_class_size = table.num_rows();
  for (const auto& [key, size] : classes) {
    (void)key;
    if (size == 1) ++stats.uniques;
    stats.min_class_size = std::min(stats.min_class_size, size);
    stats.max_class_size = std::max(stats.max_class_size, size);
    stats.histogram[std::min<size_t>(size, 10) - 1]++;
  }
  stats.mean_class_size =
      static_cast<double>(table.num_rows()) / static_cast<double>(classes.size());
  return stats;
}

struct PatternUniverse::Impl {
  NullSemantics semantics = NullSemantics::kMaybeMatch;
  size_t width = 0;
  struct Pat {
    std::vector<Value> values;
    uint32_t mask = 0;
    double count = 0.0;
    double weight = 0.0;
  };
  std::vector<Pat> patterns;
  // Null-mask class -> pattern ids.
  std::map<uint32_t, std::vector<size_t>> classes;
  // Exact-match index (kStandard fast path).
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> exact;
  // Memoized projection indexes: (class mask, union mask) -> proj -> mass.
  mutable std::map<ProjIndexKey, ProjIndex> proj_indexes;
};

PatternUniverse::PatternUniverse(const MicrodataTable& table,
                                 std::vector<size_t> qi_columns,
                                 NullSemantics semantics) {
  impl_ = std::make_shared<Impl>();
  impl_->semantics = semantics;
  impl_->width = qi_columns.size();
  CollapsedPatterns collapsed = CollapseRows(table, qi_columns, semantics);
  impl_->patterns.reserve(collapsed.patterns.size());
  for (size_t id = 0; id < collapsed.patterns.size(); ++id) {
    PatternInfo& info = collapsed.patterns[id];
    Impl::Pat pat;
    pat.mask = info.null_mask;
    pat.count = info.count;
    pat.weight = info.weight_sum;
    pat.values = std::move(info.pattern);
    impl_->patterns.push_back(std::move(pat));
    impl_->exact.emplace(impl_->patterns.back().values, id);
    impl_->classes[impl_->patterns.back().mask].push_back(id);
  }
  pattern_count_ = impl_->patterns.size();
}

PatternUniverse::Mass PatternUniverse::Query(const std::vector<Value>& pattern) const {
  Mass mass;
  if (pattern.size() != impl_->width) return mass;
  if (impl_->semantics == NullSemantics::kStandard) {
    auto it = impl_->exact.find(pattern);
    if (it != impl_->exact.end()) {
      mass.count = impl_->patterns[it->second].count;
      mass.weight = impl_->patterns[it->second].weight;
    }
    return mass;
  }
  const uint32_t qmask = NullMaskOf(pattern);
  for (const auto& [cmask, ids] : impl_->classes) {
    const uint32_t u = qmask | cmask;
    auto key = std::make_pair(cmask, u);
    auto it = impl_->proj_indexes.find(key);
    if (it == impl_->proj_indexes.end()) {
      ProjIndex index;
      index.reserve(ids.size() * 2);
      for (const size_t id : ids) {
        auto proj = ProjectOut(impl_->patterns[id].values, u);
        auto& agg = index[std::move(proj)];
        agg.first += impl_->patterns[id].count;
        agg.second += impl_->patterns[id].weight;
      }
      it = impl_->proj_indexes.emplace(key, std::move(index)).first;
    }
    const auto proj = ProjectOut(pattern, u);
    auto hit = it->second.find(proj);
    if (hit != it->second.end()) {
      mass.count += hit->second.first;
      mass.weight += hit->second.second;
    }
  }
  return mass;
}

double CountMatches(const MicrodataTable& table, const std::vector<size_t>& qi_columns,
                    const std::vector<Value>& pattern, NullSemantics semantics) {
  double count = 0.0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool match = true;
    for (size_t i = 0; i < qi_columns.size() && match; ++i) {
      const Value& cell = table.cell(r, qi_columns[i]);
      match = semantics == NullSemantics::kMaybeMatch ? cell.MaybeEquals(pattern[i])
                                                      : cell.Equals(pattern[i]);
    }
    if (match) count += 1.0;
  }
  return count;
}

// ---------------------------------------------------------------------------
// GroupIndex: the incremental index behind the cycle's risk-evaluation loop.
// ---------------------------------------------------------------------------

struct GroupIndex::Impl {
  std::vector<size_t> qi_columns;
  NullSemantics semantics = NullSemantics::kMaybeMatch;
  size_t num_rows = 0;

  std::vector<PatternInfo> patterns;
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> pattern_ids;
  std::vector<size_t> row_pattern;
  std::map<uint32_t, std::vector<size_t>> classes;  // mask -> pattern ids

  // Memoized projection indexes, shared by Stats() re-aggregation and
  // Query(); entries of a dirty class are dropped on UpdateRows.
  mutable std::map<ProjIndexKey, ProjIndex> proj_indexes;

  mutable GroupStats stats;
  mutable bool stats_dirty = true;

  size_t full_builds = 0;
  size_t incremental_updates = 0;

  void Build(const MicrodataTable& table) {
    obs::Span span("group_index.build");
    VADASA_METRIC_COUNT("group_index.full_builds", 1);
    num_rows = table.num_rows();
    CollapsedPatterns collapsed = CollapseRows(table, qi_columns, semantics);
    patterns = std::move(collapsed.patterns);
    row_pattern = std::move(collapsed.row_pattern);
    pattern_ids.clear();
    pattern_ids.reserve(patterns.size() * 2);
    classes.clear();
    for (size_t id = 0; id < patterns.size(); ++id) {
      pattern_ids.emplace(patterns[id].pattern, id);
      classes[patterns[id].null_mask].push_back(id);
    }
    proj_indexes.clear();
    stats_dirty = true;
    ++full_builds;
  }

  /// Re-derives a pattern's count/weight from its row list in row order, so
  /// the aggregates never drift through subtract-then-add rounding.
  void RecomputePatternAggregates(PatternInfo* info, const MicrodataTable& table) {
    info->count = static_cast<double>(info->rows.size());
    info->weight_sum = 0.0;
    for (const uint32_t r : info->rows) info->weight_sum += table.RowWeight(r);
  }

  void RecomputeStats() const {
    obs::Span span("group_index.recompute_stats");
    const size_t n = num_rows;
    stats.frequency.assign(n, 0.0);
    stats.weight_sum.assign(n, 0.0);
    std::vector<double> pat_freq(patterns.size(), 0.0);
    std::vector<double> pat_wsum(patterns.size(), 0.0);
    if (semantics == NullSemantics::kStandard) {
      for (size_t p = 0; p < patterns.size(); ++p) {
        pat_freq[p] = patterns[p].count;
        pat_wsum[p] = patterns[p].weight_sum;
      }
    } else {
      AggregateMaybeMatch(patterns, classes, &proj_indexes, &pat_freq, &pat_wsum);
    }
    for (size_t r = 0; r < n; ++r) {
      stats.frequency[r] = pat_freq[row_pattern[r]];
      stats.weight_sum[r] = pat_wsum[row_pattern[r]];
    }
    stats_dirty = false;
  }
};

GroupIndex::GroupIndex(const MicrodataTable& table, std::vector<size_t> qi_columns,
                       NullSemantics semantics)
    : impl_(std::make_unique<Impl>()) {
  impl_->qi_columns = std::move(qi_columns);
  impl_->semantics = semantics;
  impl_->Build(table);
}

GroupIndex::~GroupIndex() = default;

void GroupIndex::UpdateRows(const MicrodataTable& table,
                            const std::vector<uint32_t>& rows) {
  Impl& im = *impl_;
  if (table.num_rows() != im.num_rows) {
    // Shape changed under us — incremental bookkeeping is void.
    im.Build(table);
    return;
  }
  obs::Span span("group_index.update_rows");
  ++im.incremental_updates;
  VADASA_METRIC_COUNT("group_index.incremental_updates", 1);
  std::set<uint32_t> dirty_classes;
  for (const uint32_t r : rows) {
    std::vector<Value> p;
    p.reserve(im.qi_columns.size());
    for (const size_t c : im.qi_columns) p.push_back(table.cell(r, c));
    const size_t old_id = im.row_pattern[r];
    if (VecEq{}(p, im.patterns[old_id].pattern)) continue;  // No-op change.

    // Detach the row from its old pattern.
    PatternInfo& old_pat = im.patterns[old_id];
    old_pat.rows.erase(std::find(old_pat.rows.begin(), old_pat.rows.end(), r));
    im.RecomputePatternAggregates(&old_pat, table);
    dirty_classes.insert(old_pat.null_mask);

    // Attach it to the (possibly new) pattern of its current projection.
    const uint32_t mask =
        im.semantics == NullSemantics::kMaybeMatch ? NullMaskOf(p) : 0;
    auto it = im.pattern_ids.find(p);
    size_t id;
    if (it == im.pattern_ids.end()) {
      id = im.patterns.size();
      PatternInfo info;
      info.null_mask = mask;
      info.pattern = std::move(p);
      im.patterns.push_back(std::move(info));
      im.pattern_ids.emplace(im.patterns.back().pattern, id);
      im.classes[mask].push_back(id);
    } else {
      id = it->second;
    }
    PatternInfo& new_pat = im.patterns[id];
    new_pat.rows.insert(std::upper_bound(new_pat.rows.begin(), new_pat.rows.end(), r),
                        r);
    im.RecomputePatternAggregates(&new_pat, table);
    dirty_classes.insert(new_pat.null_mask);
    im.row_pattern[r] = id;
  }
  if (dirty_classes.empty()) return;
  VADASA_METRIC_COUNT("group_index.dirty_classes", dirty_classes.size());

  // Dirty-group invalidation: only projection indexes involving a touched
  // null-mask class are rebuilt by the next Stats()/Query().
  size_t dropped = 0;
  for (auto it = im.proj_indexes.begin(); it != im.proj_indexes.end();) {
    if (dirty_classes.count(it->first.first) > 0) {
      it = im.proj_indexes.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  VADASA_METRIC_COUNT("group_index.proj_indexes_dropped", dropped);
  im.stats_dirty = true;
}

const GroupStats& GroupIndex::Stats() const {
  if (impl_->stats_dirty) impl_->RecomputeStats();
  return impl_->stats;
}

PatternMass GroupIndex::Query(const std::vector<Value>& pattern) const {
  PatternMass mass;
  const Impl& im = *impl_;
  if (pattern.size() != im.qi_columns.size()) return mass;
  if (im.semantics == NullSemantics::kStandard) {
    auto it = im.pattern_ids.find(pattern);
    if (it != im.pattern_ids.end()) {
      mass.count = im.patterns[it->second].count;
      mass.weight = im.patterns[it->second].weight_sum;
    }
    return mass;
  }
  const uint32_t qmask = NullMaskOf(pattern);
  for (const auto& [cmask, ids] : im.classes) {
    const uint32_t u = qmask | cmask;
    const ProjIndexKey key{cmask, u};
    auto it = im.proj_indexes.find(key);
    if (it == im.proj_indexes.end()) {
      VADASA_METRIC_COUNT("group_index.proj_indexes_built", 1);
      it = im.proj_indexes.emplace(key, BuildProjIndex(im.patterns, ids, u)).first;
    }
    const auto proj = ProjectOut(pattern, u);
    auto hit = it->second.find(proj);
    if (hit != it->second.end()) {
      mass.count += hit->second.first;
      mass.weight += hit->second.second;
    }
  }
  return mass;
}

const std::vector<size_t>& GroupIndex::qi_columns() const { return impl_->qi_columns; }
NullSemantics GroupIndex::semantics() const { return impl_->semantics; }
size_t GroupIndex::num_rows() const { return impl_->num_rows; }
size_t GroupIndex::num_patterns() const { return impl_->patterns.size(); }
size_t GroupIndex::full_builds() const { return impl_->full_builds; }
size_t GroupIndex::incremental_updates() const { return impl_->incremental_updates; }

// ---------------------------------------------------------------------------
// RiskEvalCache
// ---------------------------------------------------------------------------

struct RiskEvalCache::Impl {
  struct Key {
    std::vector<size_t> qis;
    NullSemantics semantics;
    bool operator<(const Key& other) const {
      if (semantics != other.semantics) return semantics < other.semantics;
      return qis < other.qis;
    }
  };
  std::map<Key, std::unique_ptr<GroupIndex>> indexes;
  std::map<std::string, std::shared_ptr<void>> memos;
  uint64_t version = 0;
};

RiskEvalCache::RiskEvalCache() : impl_(std::make_unique<Impl>()) {}
RiskEvalCache::~RiskEvalCache() = default;

GroupIndex& RiskEvalCache::Index(const MicrodataTable& table,
                                 const std::vector<size_t>& qi_columns,
                                 NullSemantics semantics) {
  const Impl::Key key{qi_columns, semantics};
  auto it = impl_->indexes.find(key);
  if (it == impl_->indexes.end()) {
    VADASA_METRIC_COUNT("risk_cache.index_misses", 1);
    it = impl_->indexes
             .emplace(key, std::make_unique<GroupIndex>(table, qi_columns, semantics))
             .first;
  } else if (it->second->num_rows() != table.num_rows()) {
    VADASA_METRIC_COUNT("risk_cache.index_misses", 1);
    it->second = std::make_unique<GroupIndex>(table, qi_columns, semantics);
  } else {
    VADASA_METRIC_COUNT("risk_cache.index_hits", 1);
  }
  return *it->second;
}

const GroupStats& RiskEvalCache::Stats(const MicrodataTable& table,
                                       const std::vector<size_t>& qi_columns,
                                       NullSemantics semantics) {
  return Index(table, qi_columns, semantics).Stats();
}

void RiskEvalCache::NotifyRowsChanged(const MicrodataTable& table,
                                      const std::vector<uint32_t>& rows) {
  ++impl_->version;
  impl_->memos.clear();
  for (auto& [key, index] : impl_->indexes) {
    (void)key;
    index->UpdateRows(table, rows);
  }
}

uint64_t RiskEvalCache::version() const { return impl_->version; }

std::shared_ptr<void> RiskEvalCache::Memo(const std::string& key) const {
  auto it = impl_->memos.find(key);
  if (it == impl_->memos.end()) {
    VADASA_METRIC_COUNT("risk_cache.memo_misses", 1);
    return nullptr;
  }
  VADASA_METRIC_COUNT("risk_cache.memo_hits", 1);
  return it->second;
}

void RiskEvalCache::SetMemo(const std::string& key, std::shared_ptr<void> value) {
  impl_->memos[key] = std::move(value);
}

size_t RiskEvalCache::full_builds() const {
  size_t total = 0;
  for (const auto& [key, index] : impl_->indexes) {
    (void)key;
    total += index->full_builds();
  }
  return total;
}

size_t RiskEvalCache::incremental_updates() const {
  size_t total = 0;
  for (const auto& [key, index] : impl_->indexes) {
    (void)key;
    total += index->incremental_updates();
  }
  return total;
}

}  // namespace vadasa::core
