#ifndef VADASA_CORE_MICRODATA_H_
#define VADASA_CORE_MICRODATA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/csv.h"
#include "common/result.h"
#include "common/value.h"

namespace vadasa::core {

/// The four attribute roles of Section 2.1.
enum class AttributeCategory {
  kIdentifier,      ///< Direct identifier: alone re-identifies the respondent.
  kQuasiIdentifier, ///< Jointly selective attributes.
  kNonIdentifying,  ///< Harmless attributes.
  kWeight,          ///< The sampling weight W.
};

std::string AttributeCategoryToString(AttributeCategory c);
Result<AttributeCategory> AttributeCategoryFromString(const std::string& s);

/// One attribute of a microdata DB: name, free-text description, role.
struct Attribute {
  std::string name;
  std::string description;
  AttributeCategory category = AttributeCategory::kNonIdentifying;
};

/// A microdata DB M(i, q, a, W): a named relation whose columns are
/// categorized per Section 2.1. Cells are Values; anonymization replaces
/// quasi-identifier cells with labelled nulls or coarser domain values.
class MicrodataTable {
 public:
  MicrodataTable() = default;
  MicrodataTable(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {
    ReindexSchema();
  }

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t num_columns() const { return attributes_.size(); }
  size_t num_rows() const { return rows_.size(); }

  const std::vector<Value>& row(size_t i) const { return *rows_[i]; }
  const Value& cell(size_t row, size_t col) const { return (*rows_[row])[col]; }

  /// Overwrites one cell. Rows are structurally shared between table copies
  /// (copying a table is O(rows) refcount bumps, not a deep copy — the delta
  /// rebuild in ApplyDeltaToTable leans on this), so a write to a shared row
  /// first detaches a private copy of that row. References returned by row()
  /// for the same index before the write may therefore dangle after it.
  void set_cell(size_t row, size_t col, Value v) {
    MutableRow(row)[col] = std::move(v);
  }

  /// Appends a row; must match the column count.
  Status AddRow(std::vector<Value> row);

  /// Column index by attribute name; -1 if absent. One hash lookup — the
  /// name→index map is cached and rebuilt on schema mutation, so per-row
  /// callers (RowWeight via WeightColumn) never pay a linear schema scan.
  int ColumnIndex(const std::string& name) const;

  /// Changes the category of a named attribute.
  Status SetCategory(const std::string& attribute, AttributeCategory category);

  /// Indices of columns with the given category, in schema order.
  std::vector<size_t> ColumnsWithCategory(AttributeCategory category) const;

  /// Indices of the quasi-identifier columns (the default AnonSet).
  std::vector<size_t> QuasiIdentifierColumns() const {
    return ColumnsWithCategory(AttributeCategory::kQuasiIdentifier);
  }

  /// Index of the (single) weight column; -1 if none. Cached; invalidated on
  /// schema mutation (SetCategory).
  int WeightColumn() const { return weight_column_; }

  /// Sampling weight of a row: the weight cell as double, or 1.0 when the
  /// table has no weight column.
  double RowWeight(size_t row) const;

  /// Counts labelled-null cells across the quasi-identifier columns.
  size_t CountNullCells() const;

  /// Fails unless all rows have the right width, at most one weight column
  /// exists, and weights are numeric.
  Status Validate() const;

  /// Loads from CSV. Category metadata is supplied separately (columns named
  /// in `weight_attribute` get kWeight, `identifier_attributes` get
  /// kIdentifier, remaining default to kQuasiIdentifier).
  static Result<MicrodataTable> FromCsv(const std::string& name, const CsvTable& csv,
                                        const std::vector<std::string>& identifier_attributes,
                                        const std::string& weight_attribute);

  /// Serializes to CSV; labelled nulls render as "NULL_k".
  CsvTable ToCsv() const;

  /// Pretty-prints the first `max_rows` rows as an aligned text table.
  std::string ToText(size_t max_rows = 25) const;

 private:
  /// Rebuilds the name→index map and the cached weight column. Called from
  /// every schema mutation (construction, SetCategory) — the caches are
  /// always current, so const readers need no lazy state or locking.
  void ReindexSchema();

  /// Copy-on-write access: detaches a private copy of the row when other
  /// table copies still share it, then returns the (now exclusive) storage.
  std::vector<Value>& MutableRow(size_t i) {
    if (rows_[i].use_count() > 1) {
      rows_[i] = std::make_shared<std::vector<Value>>(*rows_[i]);
    }
    return *rows_[i];
  }

  // The delta rebuild aliases unchanged rows from the source table instead
  // of copying them; it needs the shared handles, not just the cell values.
  friend Result<MicrodataTable> ApplyDeltaToTable(const MicrodataTable& table,
                                                  const class DeltaBatch& batch,
                                                  struct DeltaRowPlan* plan);

  std::string name_;
  std::vector<Attribute> attributes_;
  /// Row storage. shared_ptr per row so copies of the table (snapshots,
  /// delta generations) share unchanged rows; set_cell copy-on-writes.
  std::vector<std::shared_ptr<std::vector<Value>>> rows_;
  std::unordered_map<std::string, int> name_index_;
  int weight_column_ = -1;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_MICRODATA_H_
