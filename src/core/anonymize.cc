#include "core/anonymize.h"

#include <algorithm>

namespace vadasa::core {

namespace {

/// Highest labelled-null label anywhere in the table. Suppression must start
/// *above* it: under standard semantics ⊥_i = ⊥_j iff i = j, so reusing a
/// label already present in a partially pre-anonymized input silently merges
/// unrelated groups and under-reports risk.
uint64_t MaxNullLabel(const MicrodataTable& table) {
  uint64_t max_label = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value& v = table.cell(r, c);
      if (v.is_null()) max_label = std::max(max_label, v.null_label());
    }
  }
  return max_label;
}

}  // namespace

std::string AnonymizationStep::ToString(const MicrodataTable& table) const {
  std::string out = method + ": row " + std::to_string(row) + ", " +
                    table.attributes()[column].name + ": " + before.ToString() +
                    " -> " + after.ToString();
  if (affected_rows > 1) {
    out += " (" + std::to_string(affected_rows) + " rows)";
  }
  return out;
}

bool LocalSuppression::CanApply(const MicrodataTable& table, size_t row,
                                size_t column) const {
  if (row >= table.num_rows() || column >= table.num_columns()) return false;
  if (table.attributes()[column].category != AttributeCategory::kQuasiIdentifier) {
    return false;
  }
  return !table.cell(row, column).is_null();
}

Result<AnonymizationStep> LocalSuppression::Apply(MicrodataTable* table, size_t row,
                                                  size_t column) {
  if (!CanApply(*table, row, column)) {
    return Status::FailedPrecondition("local suppression not applicable to row " +
                                      std::to_string(row) + " column " +
                                      std::to_string(column));
  }
  if (!label_seeded_) {
    next_label_ = std::max(next_label_, MaxNullLabel(*table) + 1);
    label_seeded_ = true;
  }
  AnonymizationStep step;
  step.row = row;
  step.column = column;
  step.before = table->cell(row, column);
  step.after = Value::Null(next_label_++);
  step.method = name();
  step.nulls_injected = 1;
  ++nulls_created_;
  step.changed_rows.push_back(static_cast<uint32_t>(row));
  table->set_cell(row, column, step.after);
  return step;
}

bool GlobalRecoding::CanApply(const MicrodataTable& table, size_t row,
                              size_t column) const {
  if (row >= table.num_rows() || column >= table.num_columns()) return false;
  if (table.attributes()[column].category != AttributeCategory::kQuasiIdentifier) {
    return false;
  }
  const Value& v = table.cell(row, column);
  if (v.is_null()) return false;
  return hierarchy_->CanGeneralize(table.attributes()[column].name, v);
}

Result<AnonymizationStep> GlobalRecoding::Apply(MicrodataTable* table, size_t row,
                                                size_t column) {
  if (!CanApply(*table, row, column)) {
    return Status::FailedPrecondition("global recoding not applicable to row " +
                                      std::to_string(row) + " column " +
                                      std::to_string(column));
  }
  const std::string& attr = table->attributes()[column].name;
  const Value before = table->cell(row, column);
  VADASA_ASSIGN_OR_RETURN(const Value after, hierarchy_->Generalize(attr, before));
  AnonymizationStep step;
  step.row = row;
  step.column = column;
  step.before = before;
  step.after = after;
  step.method = name();
  step.affected_rows = 0;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (table->cell(r, column).Equals(before)) {
      table->set_cell(r, column, after);
      step.changed_rows.push_back(static_cast<uint32_t>(r));
      ++step.affected_rows;
    }
  }
  return step;
}

bool PramPerturbation::CanApply(const MicrodataTable& table, size_t row,
                                size_t column) const {
  if (row >= table.num_rows() || column >= table.num_columns()) return false;
  if (table.attributes()[column].category != AttributeCategory::kQuasiIdentifier) {
    return false;
  }
  if (table.cell(row, column).is_null()) return false;
  // Needs at least one other value in the column to draw from.
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.cell(r, column);
    if (!v.is_null() && !v.Equals(table.cell(row, column))) return true;
  }
  return false;
}

Result<AnonymizationStep> PramPerturbation::Apply(MicrodataTable* table, size_t row,
                                                  size_t column) {
  if (!CanApply(*table, row, column)) {
    return Status::FailedPrecondition("PRAM not applicable to row " +
                                      std::to_string(row) + " column " +
                                      std::to_string(column));
  }
  const Value before = table->cell(row, column);
  // Empirical marginal of the column, current value excluded.
  std::vector<Value> values;
  std::vector<double> weights;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    const Value& v = table->cell(r, column);
    if (v.is_null() || v.Equals(before)) continue;
    bool found = false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i].Equals(v)) {
        weights[i] += 1.0;
        found = true;
        break;
      }
    }
    if (!found) {
      values.push_back(v);
      weights.push_back(1.0);
    }
  }
  const Value after = values[rng_.NextCategorical(weights)];
  AnonymizationStep step;
  step.row = row;
  step.column = column;
  step.before = before;
  step.after = after;
  step.method = name();
  step.changed_rows.push_back(static_cast<uint32_t>(row));
  table->set_cell(row, column, after);
  return step;
}

bool RecordSuppression::CanApply(const MicrodataTable& table, size_t row,
                                 size_t column) const {
  if (row >= table.num_rows() || column >= table.num_columns()) return false;
  // Applicable while the row still has any visible quasi-identifier.
  for (const size_t c : table.QuasiIdentifierColumns()) {
    if (!table.cell(row, c).is_null()) return true;
  }
  return false;
}

Result<AnonymizationStep> RecordSuppression::Apply(MicrodataTable* table, size_t row,
                                                   size_t column) {
  if (!CanApply(*table, row, column)) {
    return Status::FailedPrecondition("record suppression not applicable to row " +
                                      std::to_string(row));
  }
  if (!label_seeded_) {
    next_label_ = std::max(next_label_, MaxNullLabel(*table) + 1);
    label_seeded_ = true;
  }
  AnonymizationStep step;
  step.row = row;
  step.column = column;
  step.before = table->cell(row, column);
  step.method = name();
  step.affected_rows = 1;
  step.changed_rows.push_back(static_cast<uint32_t>(row));
  for (const size_t c : table->QuasiIdentifierColumns()) {
    if (table->cell(row, c).is_null()) continue;
    table->set_cell(row, c, Value::Null(next_label_++));
    ++step.nulls_injected;
  }
  step.after = table->cell(row, column);
  return step;
}

bool RecodeThenSuppress::CanApply(const MicrodataTable& table, size_t row,
                                  size_t column) const {
  return recode_.CanApply(table, row, column) || suppress_.CanApply(table, row, column);
}

Result<AnonymizationStep> RecodeThenSuppress::Apply(MicrodataTable* table, size_t row,
                                                    size_t column) {
  if (recode_.CanApply(*table, row, column)) return recode_.Apply(table, row, column);
  return suppress_.Apply(table, row, column);
}

}  // namespace vadasa::core
