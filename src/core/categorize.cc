#include "core/categorize.h"

namespace vadasa::core {

AttributeCategorizer::AttributeCategorizer(CategorizerOptions options)
    : options_(std::move(options)) {
  if (!options_.similarity) options_.similarity = AttributeNameSimilarity;
  if (!options_.consolidate) {
    options_.consolidate = [](const CategorizationDecision&) { return true; };
  }
}

void AttributeCategorizer::AddExperience(const std::string& attribute,
                                         AttributeCategory category) {
  experience_.push_back({attribute, category});
}

CategorizationDecision AttributeCategorizer::Categorize(const std::string& attribute) {
  CategorizationDecision decision;
  decision.attribute = attribute;

  // Rule 2: borrow the category of the most similar known attribute. Scan the
  // whole base so the EGD (Rule 4) can observe competing matches.
  double best = 0.0;
  const ExperienceEntry* best_entry = nullptr;
  for (const ExperienceEntry& e : experience_) {
    const double sim = options_.similarity(attribute, e.attribute);
    if (sim < options_.similarity_threshold) continue;
    if (best_entry != nullptr && e.category != best_entry->category) {
      // Two sufficiently-similar entries with different categories: the EGD
      // fires. Record for manual inspection; the better match wins.
      conflicts_.push_back({attribute, best_entry->category, e.category,
                            best_entry->attribute, e.attribute});
    }
    // Ties go to the most recent entry: later expert additions and Rule-3
    // consolidations override older seeds.
    if (sim >= best) {
      best = sim;
      best_entry = &e;
    }
  }
  if (best_entry != nullptr) {
    decision.category = best_entry->category;
    decision.matched_entry = best_entry->attribute;
    decision.similarity = best;
  } else {
    // Rule 1's existential, resolved by the configured default.
    decision.category = options_.default_category;
    decision.defaulted = true;
  }
  // Rule 3: recursive feedback into the experience base (human-gated).
  if (options_.consolidate(decision)) {
    decision.consolidated = true;
    experience_.push_back({attribute, decision.category});
  }
  return decision;
}

Result<std::vector<CategorizationDecision>> AttributeCategorizer::CategorizeTable(
    MicrodataTable* table, MetadataDictionary* dictionary) {
  std::vector<CategorizationDecision> decisions;
  for (const Attribute& a : table->attributes()) {
    decisions.push_back(Categorize(a.name));
  }
  if (dictionary != nullptr) {
    dictionary->IngestTable(*table, /*include_categories=*/false);
  }
  for (const CategorizationDecision& d : decisions) {
    VADASA_RETURN_NOT_OK(table->SetCategory(d.attribute, d.category));
    if (dictionary != nullptr) {
      dictionary->SetCategory({table->name(), d.attribute, d.category});
    }
  }
  VADASA_RETURN_NOT_OK(table->Validate());
  return decisions;
}

AttributeCategorizer AttributeCategorizer::WithDefaultExperience(CategorizerOptions options) {
  AttributeCategorizer c(std::move(options));
  const struct {
    const char* name;
    AttributeCategory cat;
  } kSeed[] = {
      {"id", AttributeCategory::kIdentifier},
      {"identifier", AttributeCategory::kIdentifier},
      {"company id", AttributeCategory::kIdentifier},
      {"customer identifier", AttributeCategory::kIdentifier},
      {"fiscal code", AttributeCategory::kIdentifier},
      {"ssn", AttributeCategory::kIdentifier},
      {"social security number", AttributeCategory::kIdentifier},
      {"vat number", AttributeCategory::kIdentifier},
      {"driving licence", AttributeCategory::kIdentifier},
      {"area", AttributeCategory::kQuasiIdentifier},
      {"region", AttributeCategory::kQuasiIdentifier},
      {"city", AttributeCategory::kQuasiIdentifier},
      {"sector", AttributeCategory::kQuasiIdentifier},
      {"employees", AttributeCategory::kQuasiIdentifier},
      {"age", AttributeCategory::kQuasiIdentifier},
      {"gender", AttributeCategory::kQuasiIdentifier},
      {"occupation", AttributeCategory::kQuasiIdentifier},
      {"revenue", AttributeCategory::kQuasiIdentifier},
      {"residential revenue", AttributeCategory::kQuasiIdentifier},
      {"export revenue", AttributeCategory::kQuasiIdentifier},
      {"growth", AttributeCategory::kNonIdentifying},
      {"notes", AttributeCategory::kNonIdentifying},
      {"timestamp", AttributeCategory::kNonIdentifying},
      {"weight", AttributeCategory::kWeight},
      {"sampling weight", AttributeCategory::kWeight},
  };
  for (const auto& [name, cat] : kSeed) c.AddExperience(name, cat);
  return c;
}

}  // namespace vadasa::core
