#ifndef VADASA_CORE_GROUP_INDEX_H_
#define VADASA_CORE_GROUP_INDEX_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/value.h"
#include "core/microdata.h"

namespace vadasa::core {

/// How labelled nulls compare when forming aggregation groups (Section 4.3).
enum class NullSemantics {
  /// The paper's =⊥ maybe-match: a null matches anything, so a tuple with
  /// nulls joins every group it may belong to (groups stop partitioning).
  kMaybeMatch,
  /// Standard (Skolem-chase) semantics: ⊥_i = ⊥_j iff i == j. The Fig. 7c
  /// baseline that makes suppression ineffective.
  kStandard,
};

/// Per-row group statistics over a quasi-identifier projection.
struct GroupStats {
  /// Number of rows whose QI projection matches this row's (including it).
  std::vector<double> frequency;
  /// Sum of sampling weights over those matching rows.
  std::vector<double> weight_sum;
};

/// Computes, for every row, the frequency and weight mass of its
/// quasi-identifier combination under the chosen null semantics.
///
/// Under kStandard this is a plain hash partition. Under kMaybeMatch the
/// computation groups patterns by their null-position sets and matches
/// projections, so the cost is
/// O(#rows + #null-set-classes^2 · #patterns · |qi|) rather than the naive
/// O(#rows^2 · |qi|).
GroupStats ComputeGroupStats(const MicrodataTable& table,
                             const std::vector<size_t>& qi_columns,
                             NullSemantics semantics);

/// Counts rows of `table` whose QI projection maybe-matches `pattern`
/// (`pattern` has one entry per qi_column; nulls are wildcards). Under
/// kStandard, nulls match only nulls with the same label. Linear scan —
/// intended for small tables and tests; the heuristics use PatternUniverse.
double CountMatches(const MicrodataTable& table, const std::vector<size_t>& qi_columns,
                    const std::vector<Value>& pattern, NullSemantics semantics);

/// Equivalence-class statistics of a QI projection — the file-level summary
/// SDC tools (sdcMicro, ARX) report next to the per-tuple risks.
struct EquivalenceClassStats {
  size_t num_classes = 0;
  size_t uniques = 0;            ///< Classes of size 1.
  double mean_class_size = 0.0;
  size_t min_class_size = 0;
  size_t max_class_size = 0;
  /// histogram[k] = number of classes of size k+1, up to size 10 (larger
  /// classes are accumulated in the last bucket).
  std::vector<size_t> histogram;
};

/// Computes the partition statistics under *strict* equality (equivalence
/// classes are a partition; the maybe-match relation is not transitive, so
/// class statistics are only defined for the strict semantics).
EquivalenceClassStats ComputeEquivalenceClasses(const MicrodataTable& table,
                                                const std::vector<size_t>& qi_columns);

/// A compiled snapshot of the distinct QI patterns of a table supporting fast
/// what-if queries: "how many rows would maybe-match this (possibly
/// null-bearing) pattern?". Used by the most-risky-first quasi-identifier
/// heuristic (Section 4.4) to score candidate suppressions without rescanning
/// the table. Projection indexes are built lazily per (null-class, query
/// mask) pair and memoized.
class PatternUniverse {
 public:
  PatternUniverse(const MicrodataTable& table, std::vector<size_t> qi_columns,
                  NullSemantics semantics);

  /// Row count and weight mass compatible with `pattern` (one entry per qi
  /// column of the constructor).
  struct Mass {
    double count = 0.0;
    double weight = 0.0;
  };
  Mass Query(const std::vector<Value>& pattern) const;

  size_t num_patterns() const { return pattern_count_; }

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
  size_t pattern_count_ = 0;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_GROUP_INDEX_H_
