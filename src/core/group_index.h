#ifndef VADASA_CORE_GROUP_INDEX_H_
#define VADASA_CORE_GROUP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "core/columnar.h"
#include "core/delta.h"
#include "core/microdata.h"

namespace vadasa::core {

/// How labelled nulls compare when forming aggregation groups (Section 4.3).
enum class NullSemantics {
  /// The paper's =⊥ maybe-match: a null matches anything, so a tuple with
  /// nulls joins every group it may belong to (groups stop partitioning).
  kMaybeMatch,
  /// Standard (Skolem-chase) semantics: ⊥_i = ⊥_j iff i == j. The Fig. 7c
  /// baseline that makes suppression ineffective.
  kStandard,
};

/// Maybe-match wildcarding tracks null positions in a 32-bit mask, so the
/// class-projection algorithms support at most this many quasi-identifiers.
inline constexpr size_t kMaxMaybeMatchQis = 32;

/// Fails when `qi_columns` is too wide for the chosen semantics. Risk
/// measures and the cycle call this before grouping; ComputeGroupStats itself
/// stays guarded (no undefined behavior) but silently treats columns beyond
/// the mask width as never-null under kMaybeMatch.
Status ValidateQiWidth(const std::vector<size_t>& qi_columns, NullSemantics semantics);

/// Per-row group statistics over a quasi-identifier projection.
struct GroupStats {
  /// Number of rows whose QI projection matches this row's (including it).
  std::vector<double> frequency;
  /// Sum of sampling weights over those matching rows.
  std::vector<double> weight_sum;
};

/// Computes, for every row, the frequency and weight mass of its
/// quasi-identifier combination under the chosen null semantics.
///
/// Under kStandard this is a plain hash partition. Under kMaybeMatch the
/// computation groups patterns by their null-position sets and matches
/// projections, so the cost is
/// O(#rows + #null-set-classes^2 · #patterns · |qi|) rather than the naive
/// O(#rows^2 · |qi|).
///
/// The row→pattern projection and hashing run on ThreadPool::Global(); the
/// result is bit-identical for any thread count (see thread_pool.h) and for
/// either data plane (see columnar.h — the columnar plane groups packed
/// dictionary codes instead of Value vectors, but pattern order and
/// floating-point accumulation order are unchanged).
///
/// `shared_view` lets warm callers reuse an existing columnar
/// materialization; it is consulted only under the columnar plane and only
/// when its row count matches the table.
GroupStats ComputeGroupStats(const MicrodataTable& table,
                             const std::vector<size_t>& qi_columns,
                             NullSemantics semantics,
                             std::shared_ptr<const ColumnarView> shared_view = nullptr);

/// Counts rows of `table` whose QI projection maybe-matches `pattern`
/// (`pattern` has one entry per qi_column; nulls are wildcards). Under
/// kStandard, nulls match only nulls with the same label. Linear scan —
/// intended for small tables and tests; the heuristics use PatternUniverse.
double CountMatches(const MicrodataTable& table, const std::vector<size_t>& qi_columns,
                    const std::vector<Value>& pattern, NullSemantics semantics);

/// Equivalence-class statistics of a QI projection — the file-level summary
/// SDC tools (sdcMicro, ARX) report next to the per-tuple risks.
struct EquivalenceClassStats {
  size_t num_classes = 0;
  size_t uniques = 0;            ///< Classes of size 1.
  double mean_class_size = 0.0;
  size_t min_class_size = 0;
  size_t max_class_size = 0;
  /// histogram[k] = number of classes of size k+1, up to size 10 (larger
  /// classes are accumulated in the last bucket).
  std::vector<size_t> histogram;
};

/// Computes the partition statistics under *strict* equality (equivalence
/// classes are a partition; the maybe-match relation is not transitive, so
/// class statistics are only defined for the strict semantics).
EquivalenceClassStats ComputeEquivalenceClasses(const MicrodataTable& table,
                                                const std::vector<size_t>& qi_columns);

/// Row count and weight mass compatible with a queried pattern.
struct PatternMass {
  double count = 0.0;
  double weight = 0.0;
};

/// Read-only what-if interface over a table's QI patterns: "how many rows
/// would maybe-match this (possibly null-bearing) pattern?". Implemented by
/// the immutable PatternUniverse snapshot and by the incremental GroupIndex;
/// the heuristics accept either.
class PatternOracle {
 public:
  virtual ~PatternOracle() = default;
  /// `pattern` has one entry per qi column; nulls are wildcards under
  /// kMaybeMatch.
  virtual PatternMass Query(const std::vector<Value>& pattern) const = 0;
};

/// A compiled snapshot of the distinct QI patterns of a table supporting fast
/// what-if queries. Used by the most-risky-first quasi-identifier heuristic
/// (Section 4.4) to score candidate suppressions without rescanning the
/// table. Projection indexes are built lazily per (null-class, query mask)
/// pair and memoized.
class PatternUniverse : public PatternOracle {
 public:
  PatternUniverse(const MicrodataTable& table, std::vector<size_t> qi_columns,
                  NullSemantics semantics);

  using Mass = PatternMass;
  Mass Query(const std::vector<Value>& pattern) const override;

  size_t num_patterns() const { return pattern_count_; }

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
  size_t pattern_count_ = 0;
};

/// The incremental QI group index — the cycle's replacement for re-running
/// ComputeGroupStats and rebuilding a PatternUniverse on every iteration.
///
/// Built once from the table, then kept in sync via UpdateRows() as the
/// anonymizer suppresses or recodes cells. Updates move only the touched rows
/// between patterns and mark the affected null-mask classes dirty; Stats()
/// and Query() re-aggregate lazily, rebuilding only projection indexes of
/// dirty classes (dirty-group invalidation). Both frequencies and weight sums
/// are bit-identical to a from-scratch rebuild: per-pattern aggregates are
/// re-derived in ascending row order and projection indexes accumulate class
/// members in canonical first-row order, so incremental maintenance never
/// drifts from the cold answer (see docs/performance.md and the
/// delta-vs-full-recompute-bit-identical property).
class GroupIndex : public PatternOracle {
 public:
  GroupIndex(const MicrodataTable& table, std::vector<size_t> qi_columns,
             NullSemantics semantics);

  /// Columnar-plane constructor sharing a caller-owned view: the caller (the
  /// RiskEvalCache) updates the view once per batch of row changes before
  /// calling UpdateRows, so indexes over different QI subsets never re-intern
  /// the same cells. Ignored (may be null) under the row plane; a null view
  /// under the columnar plane makes the index materialize its own.
  GroupIndex(const MicrodataTable& table, std::vector<size_t> qi_columns,
             NullSemantics semantics, std::shared_ptr<ColumnarView> shared_view);
  ~GroupIndex() override;

  GroupIndex(const GroupIndex&) = delete;
  GroupIndex& operator=(const GroupIndex&) = delete;

  /// Re-projects `rows` against the current table contents and updates the
  /// pattern partition in place. `table` must be the same (evolving) table
  /// the index was built from.
  void UpdateRows(const MicrodataTable& table, const std::vector<uint32_t>& rows);

  /// Copy-on-write delta maintenance (docs/api.md §"Streaming deltas"): a new
  /// index over `new_table`, which must be this index's table with a
  /// DeltaBatch applied (ApplyDeltaToTable produced both `new_table` and
  /// `plan`). The pattern partition is cloned and patched — deleted rows are
  /// detached and the numbering compacted, updated and appended rows are
  /// re-projected — so only patterns the delta touches are re-aggregated and
  /// only their null-mask classes lose memoized projection indexes; everything
  /// else (pattern keys, row lists, warm projection indexes, the columnar
  /// dictionaries) is inherited. The result is bit-identical to building a
  /// fresh index from `new_table` (enforced end to end by the
  /// delta-vs-full-recompute-bit-identical property). This index is not
  /// modified and stays fully usable — in-flight readers of pre-delta state
  /// are unaffected. `new_table` must outlive the returned index.
  std::unique_ptr<GroupIndex> ApplyDelta(const MicrodataTable& new_table,
                                         const DeltaRowPlan& plan) const;

  /// Per-row group statistics; re-aggregated lazily after updates.
  const GroupStats& Stats() const;

  PatternMass Query(const std::vector<Value>& pattern) const override;

  const std::vector<size_t>& qi_columns() const;
  NullSemantics semantics() const;
  size_t num_rows() const;
  size_t num_patterns() const;

  /// Which plane this index was built on (fixed at construction; the cache
  /// rebuilds an index whose plane no longer matches ActiveDataPlane()).
  DataPlane data_plane() const;

  /// Replaces the shared columnar view (cache-internal, used when the table
  /// shape changed and the cache rematerialized). The next UpdateRows
  /// detects the swap and rebuilds from the new view. No-op on the row plane.
  void AdoptView(std::shared_ptr<ColumnarView> view);

  /// The columnar view backing this index — what api::Session shares with
  /// risk evaluation as the warm view after an ApplyDelta. Null on the row
  /// plane.
  std::shared_ptr<const ColumnarView> shared_view() const;

  /// Observability: how many times the index was built from scratch (1 unless
  /// the table shape changed under us) and how many incremental row updates
  /// it absorbed.
  size_t full_builds() const;
  size_t incremental_updates() const;

  /// Opaque implementation base; one derived impl per data plane (defined in
  /// group_index.cc). Public only so those impls can inherit from it.
  struct Impl;

 private:
  /// Uninitialized shell for ApplyDelta to graft a cloned impl onto.
  GroupIndex() = default;

  std::unique_ptr<Impl> impl_;
};

/// Memoizes per-iteration risk-evaluation state so that RiskMeasure::Explain
/// (called once per logged row) and the QI-choice heuristic reuse the stats
/// the iteration's ComputeRisks already produced, instead of recomputing full
/// group statistics per call. Owned by the cycle; one cache serves one
/// evolving table. The cycle reports table mutations via NotifyRowsChanged,
/// which forwards them to the incremental GroupIndexes and invalidates the
/// per-measure memos.
class RiskEvalCache {
 public:
  RiskEvalCache();
  ~RiskEvalCache();

  RiskEvalCache(const RiskEvalCache&) = delete;
  RiskEvalCache& operator=(const RiskEvalCache&) = delete;

  /// The (incrementally maintained) group index for this projection; built on
  /// first use. Rebuilt from scratch only if the table row count changed.
  GroupIndex& Index(const MicrodataTable& table, const std::vector<size_t>& qi_columns,
                    NullSemantics semantics);

  /// Shorthand for Index(...).Stats().
  const GroupStats& Stats(const MicrodataTable& table,
                          const std::vector<size_t>& qi_columns,
                          NullSemantics semantics);

  /// Reports that the given rows of the table were mutated since the last
  /// call. Updates the shared columnar view once (all indexes read the same
  /// refreshed codes), then forwards to every index and drops the
  /// type-erased memos.
  void NotifyRowsChanged(const MicrodataTable& table,
                         const std::vector<uint32_t>& rows);

  /// The columnar view shared by this cache's indexes, created on first use
  /// (and recreated when the table shape changes). Null under the row plane.
  /// The cycle and SUDA reuse it for code-space pattern guards and
  /// projections instead of materializing their own.
  std::shared_ptr<const ColumnarView> SharedView(const MicrodataTable& table);

  /// Bumped on every NotifyRowsChanged; lets measures key their own state.
  uint64_t version() const;

  /// Type-erased per-measure memo slots (e.g. SUDA's MSU details), dropped on
  /// NotifyRowsChanged. Returns nullptr when absent.
  std::shared_ptr<void> Memo(const std::string& key) const;
  void SetMemo(const std::string& key, std::shared_ptr<void> value);

  /// Aggregated counters over all indexes, surfaced in CycleStats.
  size_t full_builds() const;
  size_t incremental_updates() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_GROUP_INDEX_H_
