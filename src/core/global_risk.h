#ifndef VADASA_CORE_GLOBAL_RISK_H_
#define VADASA_CORE_GLOBAL_RISK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/microdata.h"
#include "core/risk.h"

namespace vadasa::core {

/// Dataset-level disclosure risk indicators from the SDC literature
/// (Hundepool et al. [26]), computed on top of any per-tuple RiskMeasure.
/// These are the file-level numbers an RDC analyst signs off on before a
/// release (desideratum (iii): preemptive scoring).
struct GlobalRiskReport {
  /// τ1: expected number of correct re-identifications, Σ_t ρ_t.
  double expected_reidentifications = 0.0;
  /// τ2: τ1 / #tuples — the global re-identification rate.
  double global_risk_rate = 0.0;
  /// Tuples whose individual risk exceeds the threshold.
  size_t tuples_over_threshold = 0;
  /// The highest per-tuple risk in the file.
  double max_risk = 0.0;
  /// Number of sample-unique tuples on the full AnonSet.
  size_t sample_uniques = 0;

  std::string ToString() const;
};

/// Evaluates the file-level report using `measure` for the per-tuple risks
/// and the table's own frequencies for the uniqueness count.
Result<GlobalRiskReport> ComputeGlobalRisk(const MicrodataTable& table,
                                           const RiskMeasure& measure,
                                           const RiskContext& context,
                                           double threshold);

/// Statistically infers the cycle threshold T from the data (the paper's
/// "statistically inferred or defined by the domain experts", Section 1):
/// the risk value at the given quantile of the per-tuple risk distribution,
/// so the cycle anonymizes exactly the top (1 − quantile) share of tuples.
/// `quantile` in (0,1); e.g. 0.99 targets the riskiest 1%.
Result<double> InferThreshold(const MicrodataTable& table, const RiskMeasure& measure,
                              const RiskContext& context, double quantile);

}  // namespace vadasa::core

#endif  // VADASA_CORE_GLOBAL_RISK_H_
