#include "core/microdata.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace vadasa::core {

std::string AttributeCategoryToString(AttributeCategory c) {
  switch (c) {
    case AttributeCategory::kIdentifier:
      return "Identifier";
    case AttributeCategory::kQuasiIdentifier:
      return "Quasi-identifier";
    case AttributeCategory::kNonIdentifying:
      return "Non-identifying";
    case AttributeCategory::kWeight:
      return "Sampling Weight";
  }
  return "?";
}

Result<AttributeCategory> AttributeCategoryFromString(const std::string& s) {
  if (s == "Identifier") return AttributeCategory::kIdentifier;
  if (s == "Quasi-identifier") return AttributeCategory::kQuasiIdentifier;
  if (s == "Non-identifying") return AttributeCategory::kNonIdentifying;
  if (s == "Sampling Weight" || s == "Weight") return AttributeCategory::kWeight;
  return Status::InvalidArgument("unknown attribute category: " + s);
}

Status MicrodataTable::AddRow(std::vector<Value> row) {
  if (row.size() != attributes_.size()) {
    return Status::InvalidArgument("row has " + std::to_string(row.size()) +
                                   " cells, schema has " +
                                   std::to_string(attributes_.size()));
  }
  rows_.push_back(std::make_shared<std::vector<Value>>(std::move(row)));
  return Status::OK();
}

void MicrodataTable::ReindexSchema() {
  name_index_.clear();
  name_index_.reserve(attributes_.size());
  weight_column_ = -1;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    // First occurrence wins, matching the former linear scan on duplicates.
    name_index_.emplace(attributes_[i].name, static_cast<int>(i));
    if (weight_column_ < 0 &&
        attributes_[i].category == AttributeCategory::kWeight) {
      weight_column_ = static_cast<int>(i);
    }
  }
}

int MicrodataTable::ColumnIndex(const std::string& name) const {
  auto it = name_index_.find(name);
  return it == name_index_.end() ? -1 : it->second;
}

Status MicrodataTable::SetCategory(const std::string& attribute,
                                   AttributeCategory category) {
  const int idx = ColumnIndex(attribute);
  if (idx < 0) return Status::NotFound("no attribute named " + attribute);
  attributes_[idx].category = category;
  ReindexSchema();
  return Status::OK();
}

std::vector<size_t> MicrodataTable::ColumnsWithCategory(
    AttributeCategory category) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].category == category) out.push_back(i);
  }
  return out;
}

double MicrodataTable::RowWeight(size_t row) const {
  const int w = weight_column_;
  if (w < 0) return 1.0;
  const Value& v = (*rows_[row])[static_cast<size_t>(w)];
  return v.is_numeric() ? v.as_double() : 1.0;
}

size_t MicrodataTable::CountNullCells() const {
  size_t count = 0;
  const auto qis = QuasiIdentifierColumns();
  for (const auto& row : rows_) {
    for (const size_t c : qis) {
      if ((*row)[c].is_null()) ++count;
    }
  }
  return count;
}

Status MicrodataTable::Validate() const {
  size_t weights = 0;
  for (const Attribute& a : attributes_) {
    if (a.category == AttributeCategory::kWeight) ++weights;
  }
  if (weights > 1) {
    return Status::FailedPrecondition("microdata DB " + name_ +
                                      " has more than one weight column");
  }
  const int w = WeightColumn();
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i]->size() != attributes_.size()) {
      return Status::FailedPrecondition("row " + std::to_string(i) + " has wrong width");
    }
    if (w >= 0 && !(*rows_[i])[static_cast<size_t>(w)].is_numeric()) {
      return Status::TypeError("row " + std::to_string(i) +
                               " has a non-numeric sampling weight");
    }
  }
  return Status::OK();
}

Result<MicrodataTable> MicrodataTable::FromCsv(
    const std::string& name, const CsvTable& csv,
    const std::vector<std::string>& identifier_attributes,
    const std::string& weight_attribute) {
  std::vector<Attribute> attrs;
  for (const std::string& col : csv.header) {
    Attribute a;
    a.name = col;
    if (col == weight_attribute) {
      a.category = AttributeCategory::kWeight;
    } else if (std::find(identifier_attributes.begin(), identifier_attributes.end(),
                         col) != identifier_attributes.end()) {
      a.category = AttributeCategory::kIdentifier;
    } else {
      a.category = AttributeCategory::kQuasiIdentifier;
    }
    attrs.push_back(std::move(a));
  }
  MicrodataTable table(name, std::move(attrs));
  for (const auto& row : csv.rows) {
    std::vector<Value> values;
    values.reserve(row.size());
    for (const std::string& cell : row) values.push_back(CellToValue(cell));
    VADASA_RETURN_NOT_OK(table.AddRow(std::move(values)));
  }
  VADASA_RETURN_NOT_OK(table.Validate());
  return table;
}

CsvTable MicrodataTable::ToCsv() const {
  CsvTable csv;
  for (const Attribute& a : attributes_) csv.header.push_back(a.name);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row->size());
    for (const Value& v : *row) {
      cells.push_back(v.is_null() ? "NULL_" + std::to_string(v.null_label())
                                  : v.ToString());
    }
    csv.rows.push_back(std::move(cells));
  }
  return csv;
}

std::string MicrodataTable::ToText(size_t max_rows) const {
  std::vector<size_t> widths(attributes_.size());
  for (size_t c = 0; c < attributes_.size(); ++c) {
    widths[c] = attributes_[c].name.size();
  }
  const size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < attributes_.size(); ++c) {
      std::string s = (*rows_[r])[c].ToString();
      widths[c] = std::max(widths[c], s.size());
      cells[r].push_back(std::move(s));
    }
  }
  std::ostringstream os;
  os << "# " << name_ << " (" << rows_.size() << " rows)\n";
  for (size_t c = 0; c < attributes_.size(); ++c) {
    os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << attributes_[c].name;
  }
  os << "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < attributes_.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[r][c];
    }
    os << "\n";
  }
  if (shown < rows_.size()) os << "... (" << rows_.size() - shown << " more)\n";
  return os.str();
}

}  // namespace vadasa::core
