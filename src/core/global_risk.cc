#include "core/global_risk.h"

#include <algorithm>
#include <sstream>

#include "core/group_index.h"

namespace vadasa::core {

std::string GlobalRiskReport::ToString() const {
  std::ostringstream os;
  os << "expected re-identifications (tau1): " << expected_reidentifications
     << "; global rate (tau2): " << global_risk_rate
     << "; over threshold: " << tuples_over_threshold << "; max risk: " << max_risk
     << "; sample uniques: " << sample_uniques;
  return os.str();
}

Result<GlobalRiskReport> ComputeGlobalRisk(const MicrodataTable& table,
                                           const RiskMeasure& measure,
                                           const RiskContext& context,
                                           double threshold) {
  GlobalRiskReport report;
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> risks,
                          measure.ComputeRisks(table, context));
  for (const double r : risks) {
    report.expected_reidentifications += r;
    report.max_risk = std::max(report.max_risk, r);
    if (r > threshold) ++report.tuples_over_threshold;
  }
  if (!risks.empty()) {
    report.global_risk_rate =
        report.expected_reidentifications / static_cast<double>(risks.size());
  }
  // Sample uniques need group frequencies; reuse the context's warm stats
  // when they cover this table (same contract as the risk measures), else
  // compute once — through the shared columnar view when one is supplied.
  GroupStats scratch;
  const GroupStats* stats = context.warm_stats != nullptr &&
                                    context.warm_stats->frequency.size() ==
                                        table.num_rows()
                                ? context.warm_stats.get()
                                : nullptr;
  if (stats == nullptr) {
    scratch = ComputeGroupStats(table, context.ResolveQiColumns(table),
                                context.semantics, context.warm_view);
    stats = &scratch;
  }
  for (const double f : stats->frequency) {
    if (f == 1.0) ++report.sample_uniques;
  }
  return report;
}

Result<double> InferThreshold(const MicrodataTable& table, const RiskMeasure& measure,
                              const RiskContext& context, double quantile) {
  if (quantile <= 0.0 || quantile >= 1.0) {
    return Status::InvalidArgument("quantile must be in (0, 1)");
  }
  VADASA_ASSIGN_OR_RETURN(std::vector<double> risks,
                          measure.ComputeRisks(table, context));
  if (risks.empty()) {
    return Status::FailedPrecondition("cannot infer a threshold from an empty table");
  }
  std::sort(risks.begin(), risks.end());
  size_t index = static_cast<size_t>(quantile * static_cast<double>(risks.size()));
  if (index >= risks.size()) index = risks.size() - 1;
  return risks[index];
}

}  // namespace vadasa::core
