#include "core/linkage.h"

#include <algorithm>
#include <sstream>

#include "common/random.h"
#include "common/similarity.h"

namespace vadasa::core {

namespace {

/// Value agreement for matching: strict for non-strings, fuzzy for strings.
bool Agrees(const Value& released, const Value& oracle_value) {
  if (released.is_null()) return false;  // Suppressed cells carry no signal.
  if (released.is_string() && oracle_value.is_string()) {
    return JaroWinklerSimilarity(released.as_string(), oracle_value.as_string()) >= 0.9;
  }
  return released.Equals(oracle_value);
}

}  // namespace

std::string LinkageResult::ToString() const {
  std::ostringstream os;
  os << "attempted=" << attempted << " claimed=" << claimed << " correct=" << correct
     << " precision=" << precision << " recall=" << recall
     << " avg_block_size=" << avg_block_size;
  return os.str();
}

Result<LinkageResult> RunLinkage(const MicrodataTable& released,
                                 const IdentityOracle& oracle,
                                 const std::vector<size_t>& truth,
                                 const LinkageConfig& config) {
  const std::vector<size_t> release_qis = released.QuasiIdentifierColumns();
  if (release_qis.size() != oracle.qi_columns().size()) {
    return Status::InvalidArgument(
        "release and oracle disagree on the number of quasi-identifiers");
  }
  const size_t known =
      config.known_qis == 0
          ? release_qis.size()
          : std::min(config.known_qis, release_qis.size());
  // Split the known QIs into blocking vs scoring positions.
  std::vector<size_t> blocking = config.blocking_positions;
  if (blocking.empty()) {
    for (size_t i = 0; i < known; ++i) blocking.push_back(i);
  }
  for (const size_t b : blocking) {
    if (b >= known) {
      return Status::InvalidArgument("blocking position beyond attacker knowledge");
    }
  }
  std::vector<size_t> scoring;
  for (size_t i = 0; i < known; ++i) {
    if (std::find(blocking.begin(), blocking.end(), i) == blocking.end()) {
      scoring.push_back(i);
    }
  }

  LinkageResult result;
  Rng rng(config.seed);
  double block_total = 0.0;
  for (size_t r = 0; r < released.num_rows(); ++r) {
    ++result.attempted;
    // --- Blocking: oracle rows matching the blocked QIs (nulls wildcard,
    // i.e. carry no blocking power). ---
    std::vector<Value> pattern(release_qis.size(), Value::Null(0));
    for (const size_t b : blocking) {
      pattern[b] = released.cell(r, release_qis[b]);
    }
    const std::vector<size_t> block = oracle.Block(pattern);
    block_total += static_cast<double>(block.size());
    if (block.empty()) continue;

    // --- Matching: score candidates on the remaining known attributes. ---
    double best_score = -1.0;
    std::vector<size_t> best;
    for (const size_t candidate : block) {
      double agreements = 0.0;
      for (const size_t s : scoring) {
        if (Agrees(released.cell(r, release_qis[s]),
                   oracle.population().cell(candidate, oracle.qi_columns()[s]))) {
          agreements += 1.0;
        }
      }
      const double score =
          scoring.empty() ? 1.0 : agreements / static_cast<double>(scoring.size());
      if (score > best_score) {
        best_score = score;
        best = {candidate};
      } else if (score == best_score) {
        best.push_back(candidate);
      }
    }
    if (best_score < config.claim_threshold || best.empty()) continue;
    const size_t guess = best[rng.NextBelow(best.size())];
    ++result.claimed;
    if (r < truth.size() && guess == truth[r]) ++result.correct;
  }
  if (result.attempted > 0) {
    result.avg_block_size = block_total / static_cast<double>(result.attempted);
    result.recall = static_cast<double>(result.correct) /
                    static_cast<double>(result.attempted);
  }
  if (result.claimed > 0) {
    result.precision =
        static_cast<double>(result.correct) / static_cast<double>(result.claimed);
  }
  return result;
}

Result<std::vector<LinkageResult>> SweepAttackerKnowledge(
    const MicrodataTable& released, const IdentityOracle& oracle,
    const std::vector<size_t>& truth, uint64_t seed) {
  std::vector<LinkageResult> results;
  const size_t qis = released.QuasiIdentifierColumns().size();
  for (size_t known = 1; known <= qis; ++known) {
    LinkageConfig config;
    config.known_qis = known;
    config.seed = seed + known;
    VADASA_ASSIGN_OR_RETURN(LinkageResult result,
                            RunLinkage(released, oracle, truth, config));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace vadasa::core
