#ifndef VADASA_CORE_LINKAGE_H_
#define VADASA_CORE_LINKAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/oracle.h"

namespace vadasa::core {

/// The full record-linkage toolbox of the Figure-2 attack ("the entire
/// toolbox from the record linkage literature can be adopted", §2.2):
/// a configurable blocking step restricting the candidate cohort, then a
/// Fellegi–Sunter-style matching step scoring candidates on the remaining
/// attributes. Section 2.2's point that the real risk depends on the subset
/// q̂ of quasi-identifiers the attacker actually knows is modeled by
/// `known_qis`.
struct LinkageConfig {
  /// How many of the release's QI columns the attacker knows (prefix of the
  /// QI list); the rest are invisible to them. 0 = all.
  size_t known_qis = 0;
  /// QI positions (indices into the known set) used for blocking; the
  /// remaining known QIs are used for match scoring. Empty = all known QIs
  /// block (pure blocking attack, the paper's baseline).
  std::vector<size_t> blocking_positions;
  /// Minimum matching score (agreement fraction over scoring attributes) for
  /// the attacker to *claim* a re-identification.
  double claim_threshold = 0.0;
  uint64_t seed = 1;
};

/// Outcome of a linkage attack run.
struct LinkageResult {
  size_t attempted = 0;
  size_t claimed = 0;        ///< Tuples where the attacker asserts a match.
  size_t correct = 0;        ///< Claims that hit the true respondent.
  double precision = 0.0;    ///< correct / claimed.
  double recall = 0.0;       ///< correct / attempted.
  double avg_block_size = 0.0;

  std::string ToString() const;
};

/// Runs the blocking+matching attack of `config` against `released`, using
/// `oracle` as the attacker's external database and `truth` as ground truth.
///
/// Matching score of a candidate = fraction of scoring attributes whose
/// values agree (string similarity >= 0.9 counts as agreement); the best-
/// scoring candidate is claimed when its score clears the threshold and it
/// is the unique maximum (ties broken uniformly at random count as guesses).
Result<LinkageResult> RunLinkage(const MicrodataTable& released,
                                 const IdentityOracle& oracle,
                                 const std::vector<size_t>& truth,
                                 const LinkageConfig& config);

/// Sweeps attacker knowledge from 1 QI to all QIs and returns one result per
/// level — the §2.2 "risk w.r.t. a subset q̂" curve.
Result<std::vector<LinkageResult>> SweepAttackerKnowledge(
    const MicrodataTable& released, const IdentityOracle& oracle,
    const std::vector<size_t>& truth, uint64_t seed);

}  // namespace vadasa::core

#endif  // VADASA_CORE_LINKAGE_H_
