#include "core/infoloss.h"

namespace vadasa::core {

double PaperInformationLoss(size_t nulls_injected, size_t initial_risky_tuples,
                            size_t num_quasi_identifiers) {
  const double denom = static_cast<double>(initial_risky_tuples) *
                       static_cast<double>(num_quasi_identifiers);
  if (denom <= 0.0) return 0.0;
  const double loss = static_cast<double>(nulls_injected) / denom;
  return loss > 1.0 ? 1.0 : loss;
}

InformationLoss MeasureInformationLoss(const MicrodataTable& original,
                                       const MicrodataTable& anonymized,
                                       const Hierarchy* hierarchy) {
  InformationLoss loss;
  const auto qis = anonymized.QuasiIdentifierColumns();
  if (qis.empty() || anonymized.num_rows() == 0) return loss;

  size_t suppressed = 0;
  double height_used = 0.0;
  double height_total = 0.0;
  const bool comparable = original.num_rows() == anonymized.num_rows() &&
                          original.num_columns() == anonymized.num_columns();
  for (size_t r = 0; r < anonymized.num_rows(); ++r) {
    for (const size_t c : qis) {
      const Value& v = anonymized.cell(r, c);
      if (v.is_null()) ++suppressed;
      if (hierarchy != nullptr && comparable) {
        const std::string& attr = anonymized.attributes()[c].name;
        const Value& o = original.cell(r, c);
        const int h0 = hierarchy->GeneralizationHeight(attr, o);
        height_total += h0;
        if (!v.is_null() && !v.Equals(o)) {
          const int h1 = hierarchy->GeneralizationHeight(attr, v);
          if (h1 < h0) height_used += h0 - h1;
        }
      }
    }
  }
  loss.suppressed_cell_fraction =
      static_cast<double>(suppressed) /
      (static_cast<double>(anonymized.num_rows()) * static_cast<double>(qis.size()));
  if (height_total > 0.0) loss.generalization_loss = height_used / height_total;
  return loss;
}

}  // namespace vadasa::core
