#include "core/utility.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vadasa::core {

namespace {

/// Normalized value distribution of a column; nulls are skipped.
std::map<std::string, double> ColumnDistribution(const MicrodataTable& t,
                                                 size_t column) {
  std::map<std::string, double> dist;
  double total = 0.0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const Value& v = t.cell(r, column);
    if (v.is_null()) continue;
    dist[v.ToString()] += 1.0;
    total += 1.0;
  }
  if (total > 0.0) {
    for (auto& [k, mass] : dist) {
      (void)k;
      mass /= total;
    }
  }
  return dist;
}

double TotalVariation(const std::map<std::string, double>& a,
                      const std::map<std::string, double>& b) {
  double tv = 0.0;
  for (const auto& [k, pa] : a) {
    auto it = b.find(k);
    tv += std::fabs(pa - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [k, pb] : b) {
    if (!a.count(k)) tv += pb;
  }
  return tv / 2.0;
}

}  // namespace

std::string UtilityReport::ToString() const {
  std::ostringstream os;
  os << "utility: max marginal TV " << max_total_variation
     << ", weighted-mean ratio " << weighted_mean_ratio
     << ", disturbed 2-way cells " << disturbed_pairs_fraction << "\n";
  for (const MarginalDistance& m : marginals) {
    os << "  " << m.attribute << ": TV " << m.total_variation << ", suppressed "
       << m.suppressed_fraction << "\n";
  }
  return os.str();
}

double ColumnTotalVariation(const MicrodataTable& original,
                            const MicrodataTable& anonymized, size_t column) {
  return TotalVariation(ColumnDistribution(original, column),
                        ColumnDistribution(anonymized, column));
}

Result<UtilityReport> MeasureUtility(const MicrodataTable& original,
                                     const MicrodataTable& anonymized) {
  if (original.num_rows() != anonymized.num_rows() ||
      original.num_columns() != anonymized.num_columns()) {
    return Status::InvalidArgument(
        "utility comparison requires identically shaped tables");
  }
  UtilityReport report;
  const auto qis = anonymized.QuasiIdentifierColumns();

  for (const size_t c : qis) {
    MarginalDistance m;
    m.attribute = anonymized.attributes()[c].name;
    m.total_variation = ColumnTotalVariation(original, anonymized, c);
    size_t nulls = 0;
    for (size_t r = 0; r < anonymized.num_rows(); ++r) {
      if (anonymized.cell(r, c).is_null()) ++nulls;
    }
    m.suppressed_fraction = anonymized.num_rows() == 0
                                ? 0.0
                                : static_cast<double>(nulls) /
                                      static_cast<double>(anonymized.num_rows());
    report.max_total_variation = std::max(report.max_total_variation, m.total_variation);
    report.marginals.push_back(std::move(m));
  }

  // Weighted mean of the first numeric non-identifying attribute.
  for (const size_t c :
       anonymized.ColumnsWithCategory(AttributeCategory::kNonIdentifying)) {
    bool numeric = anonymized.num_rows() > 0 && anonymized.cell(0, c).is_numeric();
    if (!numeric) continue;
    double num_orig = 0.0;
    double num_anon = 0.0;
    double wsum = 0.0;
    for (size_t r = 0; r < anonymized.num_rows(); ++r) {
      const double w = original.RowWeight(r);
      if (original.cell(r, c).is_numeric()) num_orig += w * original.cell(r, c).as_double();
      if (anonymized.cell(r, c).is_numeric()) {
        num_anon += w * anonymized.cell(r, c).as_double();
      }
      wsum += w;
    }
    if (wsum > 0.0 && num_orig != 0.0) {
      report.weighted_mean_ratio = num_anon / num_orig;
    }
    break;
  }

  // 2-way contingency disturbance across QI pairs.
  size_t cells = 0;
  size_t disturbed = 0;
  for (size_t i = 0; i + 1 < qis.size(); ++i) {
    for (size_t j = i + 1; j < qis.size(); ++j) {
      std::map<std::string, double> before;
      std::map<std::string, double> after;
      double n_before = 0.0;
      double n_after = 0.0;
      for (size_t r = 0; r < anonymized.num_rows(); ++r) {
        const Value& a0 = original.cell(r, qis[i]);
        const Value& a1 = original.cell(r, qis[j]);
        before[a0.ToString() + "\x1f" + a1.ToString()] += 1.0;
        n_before += 1.0;
        const Value& b0 = anonymized.cell(r, qis[i]);
        const Value& b1 = anonymized.cell(r, qis[j]);
        if (b0.is_null() || b1.is_null()) continue;
        after[b0.ToString() + "\x1f" + b1.ToString()] += 1.0;
        n_after += 1.0;
      }
      for (const auto& [key, count] : before) {
        const double p_before = n_before > 0 ? count / n_before : 0.0;
        auto it = after.find(key);
        const double p_after =
            n_after > 0 && it != after.end() ? it->second / n_after : 0.0;
        ++cells;
        if (std::fabs(p_before - p_after) > 0.01) ++disturbed;
      }
    }
  }
  if (cells > 0) {
    report.disturbed_pairs_fraction =
        static_cast<double>(disturbed) / static_cast<double>(cells);
  }
  return report;
}

}  // namespace vadasa::core
