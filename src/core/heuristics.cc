#include "core/heuristics.h"

#include <algorithm>
#include <unordered_map>

namespace vadasa::core {

Result<TupleOrder> TupleOrderFromString(const std::string& s) {
  if (s == "less-significant-first") return TupleOrder::kLessSignificantFirst;
  if (s == "most-risky-first") return TupleOrder::kMostRiskyFirst;
  if (s == "fifo") return TupleOrder::kFifo;
  return Status::InvalidArgument("unknown tuple order: " + s);
}

Result<QiChoice> QiChoiceFromString(const std::string& s) {
  if (s == "most-risky-first") return QiChoice::kMostRiskyFirst;
  if (s == "first-applicable") return QiChoice::kFirstApplicable;
  if (s == "rarest-value") return QiChoice::kRarestValue;
  return Status::InvalidArgument("unknown QI choice: " + s);
}

std::vector<size_t> OrderRiskyTuples(const MicrodataTable& table,
                                     const std::vector<size_t>& risky_rows,
                                     const std::vector<double>& risks,
                                     TupleOrder order) {
  std::vector<size_t> out = risky_rows;
  switch (order) {
    case TupleOrder::kFifo:
      break;
    case TupleOrder::kLessSignificantFirst:
      std::stable_sort(out.begin(), out.end(), [&](size_t a, size_t b) {
        return table.RowWeight(a) < table.RowWeight(b);
      });
      break;
    case TupleOrder::kMostRiskyFirst:
      std::stable_sort(out.begin(), out.end(), [&](size_t a, size_t b) {
        return risks[a] > risks[b];
      });
      break;
  }
  return out;
}

Result<size_t> ChooseQiColumn(const MicrodataTable& table,
                              const std::vector<size_t>& qi_columns, size_t row,
                              QiChoice choice, const Anonymizer& anonymizer,
                              const PatternOracle& universe) {
  std::vector<size_t> applicable;
  for (const size_t c : qi_columns) {
    if (anonymizer.CanApply(table, row, c)) applicable.push_back(c);
  }
  if (applicable.empty()) {
    return Status::NotFound("no applicable quasi-identifier for row " +
                            std::to_string(row));
  }
  switch (choice) {
    case QiChoice::kFirstApplicable:
      return applicable.front();
    case QiChoice::kRarestValue: {
      size_t best = applicable.front();
      double best_count = -1.0;
      for (const size_t c : applicable) {
        double count = 0.0;
        const Value& v = table.cell(row, c);
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (table.cell(r, c).Equals(v)) count += 1.0;
        }
        if (best_count < 0.0 || count < best_count) {
          best_count = count;
          best = c;
        }
      }
      return best;
    }
    case QiChoice::kMostRiskyFirst: {
      // Score each candidate by the frequency the tuple would reach if that
      // column were wildcarded; highest reach = widest risk-reduction effect,
      // minimizing the number of suppressions needed (Section 4.4's example:
      // suppressing Sector of tuple 1 lifts its frequency to 5 in one step).
      std::vector<Value> pattern;
      pattern.reserve(qi_columns.size());
      for (const size_t c : qi_columns) pattern.push_back(table.cell(row, c));
      size_t best = applicable.front();
      double best_count = -1.0;
      for (const size_t c : applicable) {
        // Position of c inside qi_columns.
        size_t pos = 0;
        for (size_t i = 0; i < qi_columns.size(); ++i) {
          if (qi_columns[i] == c) pos = i;
        }
        const Value saved = pattern[pos];
        pattern[pos] = Value::Null(0);  // Wildcard for the what-if query.
        const double count = universe.Query(pattern).count;
        pattern[pos] = saved;
        if (count > best_count) {
          best_count = count;
          best = c;
        }
      }
      return best;
    }
  }
  return applicable.front();
}

}  // namespace vadasa::core
