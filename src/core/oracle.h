#ifndef VADASA_CORE_ORACLE_H_
#define VADASA_CORE_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/datagen.h"
#include "core/microdata.h"

namespace vadasa::core {

/// The identity oracle O(i', q', I) of Section 2: an external database that
/// holds the identity of every entity of the context, keyed by direct
/// identifiers and carrying the quasi-identifiers an attacker can cross-link
/// on. The paper treats it as an abstraction; we synthesize one so the attack
/// strategy of Figure 2 can actually be executed.
class IdentityOracle {
 public:
  struct Options {
    size_t population = 100000;
    int num_qi = 4;
    DistributionKind distribution = DistributionKind::kRealWorld;
    uint64_t seed = 42;
  };

  /// Generates a synthetic population.
  static IdentityOracle Generate(const Options& options);

  /// Population table: columns Id (direct identifier), the QIs, Identity.
  const MicrodataTable& population() const { return population_; }
  size_t size() const { return population_.num_rows(); }

  /// A microdata sample drawn from the population.
  struct Sample {
    MicrodataTable table;          ///< Schema: Id, QIs, Growth, Weight.
    std::vector<size_t> truth;     ///< Oracle row index per sample row.
  };

  /// Draws `n` distinct respondents; the sampling weight of each drawn tuple
  /// is the number of population entities sharing its QI combination — the
  /// estimator W_t of Section 2.1 (with φ = equality of quasi-identifiers).
  ///
  /// `distortion` models measurement error between the survey and the
  /// oracle: each QI cell of the sample is, with this probability, replaced
  /// by the value another random population entity carries in that column —
  /// so exact cross-linking misses even without anonymization, which is why
  /// real attacks need the fuzzy matching step of the linkage module.
  Result<Sample> SampleMicrodata(size_t n, uint64_t seed,
                                 double distortion = 0.0) const;

  /// Oracle rows whose QIs match `pattern` (labelled nulls in the pattern
  /// match anything — the blocking step of the attack).
  std::vector<size_t> Block(const std::vector<Value>& pattern) const;

  /// Indices of the QI columns within the population table.
  const std::vector<size_t>& qi_columns() const { return qi_columns_; }

  /// Identity of an oracle row.
  std::string IdentityOf(size_t row) const;

 private:
  MicrodataTable population_;
  std::vector<size_t> qi_columns_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_ORACLE_H_
