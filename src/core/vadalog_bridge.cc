#include "core/vadalog_bridge.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/similarity.h"
#include "obs/trace.h"

namespace vadasa::core {

namespace {

using vadalog::ActionContext;
using vadalog::Database;

/// Number of labelled-null values inside a VSet pairset.
size_t NullsIn(const Value& vset) {
  if (!vset.is_collection()) return 0;
  size_t count = 0;
  for (const Value& pair : vset.items()) {
    if (pair.is_list() && pair.items().size() == 2 && pair.items()[1].is_null()) {
      ++count;
    }
  }
  return count;
}

/// Value for key `k` in a VSet; nullptr if absent.
const Value* VsetGet(const Value& vset, const Value& k) {
  for (const Value& pair : vset.items()) {
    if (pair.is_list() && pair.items().size() == 2 && pair.items()[0].Equals(k)) {
      return &pair.items()[1];
    }
  }
  return nullptr;
}

/// Do two VSets match on every shared key, under the chosen semantics?
bool VsetsMatch(const Value& a, const Value& b, bool maybe_match) {
  for (const Value& pair : a.items()) {
    if (!pair.is_list() || pair.items().size() != 2) continue;
    const Value* other = VsetGet(b, pair.items()[0]);
    if (other == nullptr) continue;
    const bool ok = maybe_match ? pair.items()[1].MaybeEquals(*other)
                                : pair.items()[1].Equals(*other);
    if (!ok) return false;
  }
  return true;
}

/// Latest (most anonymized) VSet version per tuple id, for one microdata DB.
std::map<int64_t, Value> LatestVersions(const Database& db, const Value& m) {
  std::map<int64_t, Value> latest;
  for (const auto& row : db.Rows("tuple")) {
    if (row.size() != 3 || !row[0].Equals(m) || !row[1].is_int()) continue;
    const int64_t id = row[1].as_int();
    auto it = latest.find(id);
    if (it == latest.end() || NullsIn(row[2]) > NullsIn(it->second)) {
      latest[id] = row[2];
    }
  }
  return latest;
}

}  // namespace

VadalogBridge::VadalogBridge(BridgeOptions options) : options_(std::move(options)) {}

void VadalogBridge::EncodeMicrodata(const MicrodataTable& table,
                                    Database* db) const {
  const Value m = Value::String(table.name());
  db->AddFact("microdb", {m});
  for (const Attribute& a : table.attributes()) {
    db->AddFact("att", {m, Value::String(a.name)});
    db->AddFact("cat", {m, Value::String(a.name),
                        Value::String(AttributeCategoryToString(a.category))});
  }
  const auto qis = table.QuasiIdentifierColumns();
  const auto identifiers = table.ColumnsWithCategory(AttributeCategory::kIdentifier);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> pairs;
    pairs.reserve(qis.size());
    for (const size_t c : qis) {
      pairs.push_back(Value::List(
          {Value::String(table.attributes()[c].name), table.cell(r, c)}));
    }
    const Value id = Value::Int(static_cast<int64_t>(r));
    db->AddFact("tuple", {m, id, Value::Set(std::move(pairs))});
    db->AddFact("weight", {m, id, Value::Double(table.RowWeight(r))});
    // Entity names for #rel joins (Algorithm 9); the raw identifier values
    // stay in the extensional component but never reach tupleA.
    if (!identifiers.empty()) {
      db->AddFact("entity",
                  {m, id, Value::String(table.cell(r, identifiers[0]).ToString())});
    }
  }
}

void VadalogBridge::RegisterExternals(vadalog::Engine* engine,
                                      const OwnershipGraph* graph) const {
  const BridgeOptions options = options_;

  // --- #risk(M, I, VSet, R): the polymorphic risk plug-in. ---
  engine->externals()->RegisterPredicate(
      "#risk",
      [options](const std::vector<std::optional<Value>>& args, const Database& db)
          -> Result<std::vector<std::vector<Value>>> {
        obs::Span span("risk.external");
        if (args.size() != 4) {
          return Status::InvalidArgument("#risk expects (M, I, VSet, R)");
        }
        if (!args[0] || !args[1] || !args[2]) {
          return Status::FailedPrecondition("#risk needs M, I and VSet bound");
        }
        const Value& m = *args[0];
        const Value& vset = *args[2];
        const auto latest = LatestVersions(db, m);
        double count = 0.0;
        double weight_sum = 0.0;
        std::unordered_map<int64_t, double> weights;
        for (const auto& row : db.Rows("weight")) {
          if (row.size() == 3 && row[0].Equals(m) && row[1].is_int()) {
            weights[row[1].as_int()] = row[2].as_double();
          }
        }
        for (const auto& [id, other] : latest) {
          if (VsetsMatch(vset, other, options.maybe_match)) {
            count += 1.0;
            auto w = weights.find(id);
            weight_sum += w == weights.end() ? 1.0 : w->second;
          }
        }
        double risk;
        if (options.risk_measure == "reidentification") {
          risk = weight_sum <= 1.0 ? 1.0 : std::min(1.0, 1.0 / weight_sum);
        } else {  // k-anonymity
          risk = count < static_cast<double>(options.k) ? 1.0 : 0.0;
        }
        return std::vector<std::vector<Value>>{
            {m, *args[1], vset, Value::Double(risk)}};
      });

  // --- #anonymize(M, I, VSet): one local-suppression step, choosing the
  // quasi-identifier with the widest risk-reduction reach ("most risky
  // first", Section 4.4). ---
  engine->externals()->RegisterAction(
      "#anonymize",
      [options](const std::vector<Value>& args, ActionContext* ctx) -> Status {
        obs::Span span("anonymize.external");
        if (args.size() != 3) {
          return Status::InvalidArgument("#anonymize expects (M, I, VSet)");
        }
        const Value& m = args[0];
        const Value& id = args[1];
        const Value& vset = args[2];
        if (!vset.is_collection() || !id.is_int()) {
          return Status::InvalidArgument("#anonymize: malformed tuple");
        }
        // Only anonymize the latest version of the tuple; a stale re-trigger
        // on an older VSet would fork divergent versions.
        const auto latest = LatestVersions(ctx->db(), m);
        auto it = latest.find(id.as_int());
        if (it != latest.end() && NullsIn(it->second) > NullsIn(vset)) {
          return Status::OK();
        }
        // Score every non-null key by the group the tuple would reach if
        // that key were wildcarded; suppress the best one.
        const std::vector<Value>& pairs = vset.items();
        int best = -1;
        double best_reach = -1.0;
        for (size_t p = 0; p < pairs.size(); ++p) {
          if (!pairs[p].is_list() || pairs[p].items().size() != 2) continue;
          if (pairs[p].items()[1].is_null()) continue;
          std::vector<Value> candidate = pairs;
          candidate[p] = Value::List({pairs[p].items()[0], Value::Null(0)});
          const Value probe = Value::Set(candidate);
          double reach = 0.0;
          for (const auto& [other_id, other] : latest) {
            (void)other_id;
            if (VsetsMatch(probe, other, options.maybe_match)) reach += 1.0;
          }
          if (reach > best_reach) {
            best_reach = reach;
            best = static_cast<int>(p);
          }
        }
        if (best < 0) return Status::OK();  // Everything already suppressed.
        std::vector<Value> next = pairs;
        next[best] = Value::List({pairs[best].items()[0], ctx->FreshNull()});
        ctx->Emit("tuple", {m, id, Value::Set(std::move(next))});
        return Status::OK();
      });

  // --- #rel(X, Y): same-control-cluster relation (reflexive). ---
  std::shared_ptr<std::unordered_map<std::string, int>> clusters;
  if (graph != nullptr) {
    clusters = std::make_shared<std::unordered_map<std::string, int>>(
        graph->ComputeClusters());
  }
  engine->externals()->RegisterPredicate(
      "#rel",
      [clusters](const std::vector<std::optional<Value>>& args, const Database& db)
          -> Result<std::vector<std::vector<Value>>> {
        (void)db;
        if (args.size() != 2) return Status::InvalidArgument("#rel expects (X, Y)");
        if (!args[0]) return Status::FailedPrecondition("#rel needs X bound");
        std::vector<std::vector<Value>> rows;
        const Value& x = *args[0];
        if (args[1]) {
          // Fully bound: test.
          if (x.Equals(*args[1])) {
            rows.push_back({x, *args[1]});
          } else if (clusters) {
            auto a = clusters->find(x.ToString());
            auto b = clusters->find(args[1]->ToString());
            if (a != clusters->end() && b != clusters->end() && a->second == b->second) {
              rows.push_back({x, *args[1]});
            }
          }
          return rows;
        }
        // Enumerate cluster members of x.
        rows.push_back({x, x});
        if (clusters) {
          auto a = clusters->find(x.ToString());
          if (a != clusters->end()) {
            for (const auto& [name, cid] : *clusters) {
              if (cid == a->second && name != x.ToString()) {
                rows.push_back({x, Value::String(name)});
              }
            }
          }
        }
        return rows;
      });

  // --- #similar(A, B): the pluggable ∼ of Algorithm 1. ---
  engine->externals()->RegisterPredicate(
      "#similar",
      [](const std::vector<std::optional<Value>>& args, const Database& db)
          -> Result<std::vector<std::vector<Value>>> {
        (void)db;
        if (args.size() != 2) return Status::InvalidArgument("#similar expects (A, B)");
        if (!args[0] || !args[1]) {
          return Status::FailedPrecondition("#similar needs both names bound");
        }
        if (!args[0]->is_string() || !args[1]->is_string()) {
          return std::vector<std::vector<Value>>{};
        }
        if (AttributeNameSimilarity(args[0]->as_string(), args[1]->as_string()) >=
            0.82) {
          return std::vector<std::vector<Value>>{{*args[0], *args[1]}};
        }
        return std::vector<std::vector<Value>>{};
      });
}

std::string VadalogBridge::CycleProgram() const {
  std::ostringstream os;
  os << "% Anonymization cycle (Algorithm 2, Rules 2-3).\n";
  os << "#anonymize(M, I, VSet) :- tuple(M, I, VSet), #risk(M, I, VSet, R), R > "
     << options_.threshold << ".\n";
  os << "tupleA(M, I, VSet) :- tuple(M, I, VSet), #risk(M, I, VSet, R), R <= "
     << options_.threshold << ".\n";
  os << "@output(\"tupleA\").\n";
  return os.str();
}

std::string VadalogBridge::EnhancedCycleProgram() const {
  std::ostringstream os;
  os << "% Enhanced anonymization cycle (Algorithm 9, Rules 2-4).\n";
  os << "clusterrisk(M, I1, R) :- entity(M, I1, N1), entity(M, I2, N2),\n"
     << "                         #rel(N1, N2), tuple(M, I2, VSet2),\n"
     << "                         #risk(M, I2, VSet2, Q), S = 1 - Q,\n"
     << "                         P = mprod(S, <I2>), R = 1 - P.\n";
  os << "#anonymize(M, I, VSet) :- tuple(M, I, VSet), clusterrisk(M, I, R), R > "
     << options_.threshold << ".\n";
  // A version is releasable when the cluster is settled AND the version
  // itself carries acceptable base risk (the per-version refinement that
  // keeps the decode minimal, as in the basic cycle).
  os << "tupleA(M, I, VSet) :- tuple(M, I, VSet), clusterrisk(M, I, R), R <= "
     << options_.threshold << ", #risk(M, I, VSet, Q), Q <= " << options_.threshold
     << ".\n";
  os << "@output(\"tupleA\").\n";
  return os.str();
}

std::string VadalogBridge::CategorizationProgram() {
  return R"prog(% Algorithm 1: attribute categorization.
% Rule 2: borrow the category of a similar known attribute.
cat(M, A, C) :- att(M, A), expbase(A1, C), #similar(A, A1).
% Rule 3: recursive feedback into the experience base.
expbase(A, C) :- cat(M, A, C).
% Rule 1: every attribute gets some category (existential labelled null,
% unified with the concrete category by the EGD when one is derivable).
cat(M, A, C) :- att(M, A).
% Rule 4 (EGD): one category per attribute.
C1 = C2 :- cat(M, A, C1), cat(M, A, C2).
@output("cat").
)prog";
}

namespace {

/// Decodes the engine's tupleA facts back into a released table; shared by
/// the basic and enhanced declarative cycles.
MicrodataTable DecodeRelease(const Database& db, const MicrodataTable& table,
                             const BridgeOptions& options);

}  // namespace

Result<MicrodataTable> VadalogBridge::RunDeclarativeCycle(
    const MicrodataTable& table, const OwnershipGraph* graph,
    vadalog::RunStats* stats) const {
  obs::Span span("bridge.declarative_cycle");
  vadalog::EngineOptions engine_options;
  engine_options.track_provenance = true;
  vadalog::Engine engine(engine_options);
  RegisterExternals(&engine, graph);

  Database db;
  EncodeMicrodata(table, &db);
  VADASA_ASSIGN_OR_RETURN(const vadalog::RunStats run,
                          vadalog::RunSource(CycleProgram(), &db, &engine));
  if (stats != nullptr) *stats = run;
  return DecodeRelease(db, table, options_);
}

Result<MicrodataTable> VadalogBridge::RunDeclarativeEnhancedCycle(
    const MicrodataTable& table, const OwnershipGraph& graph,
    vadalog::RunStats* stats) const {
  obs::Span span("bridge.declarative_enhanced_cycle");
  vadalog::EngineOptions engine_options;
  engine_options.track_provenance = true;
  vadalog::Engine engine(engine_options);
  RegisterExternals(&engine, &graph);

  Database db;
  EncodeMicrodata(table, &db);
  VADASA_ASSIGN_OR_RETURN(const vadalog::RunStats run,
                          vadalog::RunSource(EnhancedCycleProgram(), &db, &engine));
  if (stats != nullptr) *stats = run;
  return DecodeRelease(db, table, options_);
}

namespace {

MicrodataTable DecodeRelease(const Database& db, const MicrodataTable& table,
                             const BridgeOptions& options) {
  // Candidate versions per tuple: the accepted (tupleA) versions ordered by
  // null count ascending, then the most anonymized version seen at all as a
  // safe fallback. Starting from the least-suppressed candidates, the chosen
  // combination is validated as a whole and risky rows are pushed to their
  // next (more suppressed) candidate: per-tuple "fewest nulls" alone is
  // unsound, because two originals may have validated only against each
  // other's suppressed versions.
  const Value m = Value::String(table.name());
  std::map<int64_t, std::vector<Value>> candidates;
  for (const auto& row : db.Rows("tupleA")) {
    if (row.size() != 3 || !row[0].Equals(m) || !row[1].is_int()) continue;
    candidates[row[1].as_int()].push_back(row[2]);
  }
  const auto latest = LatestVersions(db, m);
  for (const auto& [id, version] : latest) {
    candidates[id].push_back(version);
  }
  for (auto& [id, versions] : candidates) {
    (void)id;
    std::sort(versions.begin(), versions.end(), [](const Value& a, const Value& b) {
      return NullsIn(a) < NullsIn(b);
    });
  }
  std::map<int64_t, size_t> pick;
  for (const auto& [id, versions] : candidates) {
    (void)versions;
    pick[id] = 0;
  }
  // Validate the assembled combination; advance risky rows. Each advance
  // strictly increases some pick index, so this terminates.
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [id, index] : pick) {
      const auto& versions = candidates[id];
      double mass = 0.0;
      for (const auto& [other_id, other_index] : pick) {
        if (!VsetsMatch(versions[index], candidates[other_id][other_index],
                        options.maybe_match)) {
          continue;
        }
        if (options.risk_measure == "reidentification") {
          const auto& weights = db.Rows("weight");
          for (const auto& w : weights) {
            if (w[1].is_int() && w[1].as_int() == other_id) mass += w[2].as_double();
          }
        } else {
          mass += 1.0;
        }
      }
      const bool risky = options.risk_measure == "reidentification"
                             ? (mass <= 1.0 || 1.0 / mass > options.threshold)
                             : mass < static_cast<double>(options.k);
      if (risky && index + 1 < versions.size()) {
        ++index;
        changed = true;
      }
    }
  }

  MicrodataTable out = table;
  const auto qis = out.QuasiIdentifierColumns();
  for (size_t r = 0; r < out.num_rows(); ++r) {
    auto it = pick.find(static_cast<int64_t>(r));
    if (it == pick.end()) continue;
    const Value& vset = candidates[it->first][it->second];
    for (const size_t c : qis) {
      const Value* v = VsetGet(vset, Value::String(out.attributes()[c].name));
      if (v != nullptr) out.set_cell(r, c, *v);
    }
    // Direct identifiers are dropped from the release (Algorithm 2, Rule 1).
    for (const size_t c : out.ColumnsWithCategory(AttributeCategory::kIdentifier)) {
      out.set_cell(r, c, Value::String("<dropped>"));
    }
  }
  return out;
}

}  // namespace

}  // namespace vadasa::core
