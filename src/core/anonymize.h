#ifndef VADASA_CORE_ANONYMIZE_H_
#define VADASA_CORE_ANONYMIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/hierarchy.h"
#include "core/microdata.h"

namespace vadasa::core {

/// Record of one anonymization action, for the explainable cycle log.
struct AnonymizationStep {
  size_t row = 0;
  size_t column = 0;
  Value before;
  Value after;
  std::string method;
  /// Rows actually modified (1 for local suppression; possibly many for
  /// global recoding, which rewrites every occurrence of the value).
  size_t affected_rows = 1;
  /// Labelled nulls introduced by this step.
  size_t nulls_injected = 0;
  /// Indices of the rows this step modified — what the cycle feeds to
  /// RiskEvalCache::NotifyRowsChanged for incremental index maintenance.
  std::vector<uint32_t> changed_rows;

  std::string ToString(const MicrodataTable& table) const;
};

/// A pluggable anonymization method — the polymorphic `#anonymize` of
/// Algorithm 2. The cycle chooses (row, column); the method performs one
/// minimal information-removal step.
class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  virtual std::string name() const = 0;

  /// Whether this method can do anything to (row, column).
  virtual bool CanApply(const MicrodataTable& table, size_t row, size_t column) const = 0;

  /// Applies one step in place.
  virtual Result<AnonymizationStep> Apply(MicrodataTable* table, size_t row,
                                          size_t column) = 0;
};

/// Local suppression with labelled nulls (Algorithm 7): replaces the cell
/// with a fresh ⊥_k. Applicable to any non-null quasi-identifier cell.
class LocalSuppression : public Anonymizer {
 public:
  std::string name() const override { return "local-suppression"; }
  bool CanApply(const MicrodataTable& table, size_t row, size_t column) const override;
  Result<AnonymizationStep> Apply(MicrodataTable* table, size_t row,
                                  size_t column) override;

  uint64_t nulls_created() const { return nulls_created_; }

 private:
  uint64_t next_label_ = 1;
  uint64_t nulls_created_ = 0;
  bool label_seeded_ = false;
};

/// Global recoding over a domain hierarchy (Algorithm 8): replaces the cell's
/// value with its direct super-value — in *every* row carrying that value in
/// that column, hence "global".
class GlobalRecoding : public Anonymizer {
 public:
  explicit GlobalRecoding(const Hierarchy* hierarchy) : hierarchy_(hierarchy) {}

  std::string name() const override { return "global-recoding"; }
  bool CanApply(const MicrodataTable& table, size_t row, size_t column) const override;
  Result<AnonymizationStep> Apply(MicrodataTable* table, size_t row,
                                  size_t column) override;

 private:
  const Hierarchy* hierarchy_;
};

/// PRAM-style post-randomization (sdcMicro's `pram`): replaces the cell with
/// a value drawn from the column's empirical marginal (excluding the current
/// value), so selective values migrate toward common ones while the column
/// distribution is approximately preserved. Unlike suppression the released
/// value is *not truthful* — standard for PRAM, and the release must say so.
/// Deterministic for a given seed.
class PramPerturbation : public Anonymizer {
 public:
  explicit PramPerturbation(uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "pram-perturbation"; }
  bool CanApply(const MicrodataTable& table, size_t row, size_t column) const override;
  Result<AnonymizationStep> Apply(MicrodataTable* table, size_t row,
                                  size_t column) override;

 private:
  Rng rng_;
};

/// Record suppression: wipes *every* quasi-identifier of the row with fresh
/// labelled nulls in one step. The blunt instrument of the SDC toolbox —
/// maximal per-tuple information loss, but guaranteed to resolve any
/// combination-based risk in a single application. Used as an ablation
/// baseline against the minimal cell-wise methods.
class RecordSuppression : public Anonymizer {
 public:
  std::string name() const override { return "record-suppression"; }
  bool CanApply(const MicrodataTable& table, size_t row, size_t column) const override;
  Result<AnonymizationStep> Apply(MicrodataTable* table, size_t row,
                                  size_t column) override;

 private:
  uint64_t next_label_ = 1;
  bool label_seeded_ = false;
};

/// Tries global recoding first and falls back to local suppression when the
/// hierarchy has nothing left to offer — a pragmatic composition used by the
/// examples.
class RecodeThenSuppress : public Anonymizer {
 public:
  explicit RecodeThenSuppress(const Hierarchy* hierarchy) : recode_(hierarchy) {}

  std::string name() const override { return "recode-then-suppress"; }
  bool CanApply(const MicrodataTable& table, size_t row, size_t column) const override;
  Result<AnonymizationStep> Apply(MicrodataTable* table, size_t row,
                                  size_t column) override;

 private:
  GlobalRecoding recode_;
  LocalSuppression suppress_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_ANONYMIZE_H_
