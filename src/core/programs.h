#ifndef VADASA_CORE_PROGRAMS_H_
#define VADASA_CORE_PROGRAMS_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace vadasa::core {

/// The off-the-shelf Vadalog module library of Section 4: the paper's
/// Algorithms expressed in this repository's dialect, ready to run on the
/// engine (see tests/integration/paper_algorithms_test.cc for the expected
/// input predicates of each).
///
/// Input encodings:
///   att(M, A)                 attribute A of microdata DB M
///   expbase(A, C)             experience-base entry (Algorithm 1)
///   tuple(I, VSet)            tuple I with its QI pairset
///   qival(I, A, V)            exploded QI values (Algorithm 6)
///   qweight(I, W)             sampling weight
///   own(X, Y, W)              ownership share (Section 4.4)
///   memberrisk(C, E, R)       per-entity risk within cluster C (Algorithm 9)
struct AlgorithmProgram {
  std::string name;         ///< e.g. "algorithm1-categorization"
  std::string description;  ///< one-line summary
  std::string source;       ///< Vadalog source text
};

/// All shipped programs.
const std::vector<AlgorithmProgram>& AlgorithmLibrary();

/// Finds a program by name.
Result<AlgorithmProgram> FindAlgorithmProgram(const std::string& name);

}  // namespace vadasa::core

#endif  // VADASA_CORE_PROGRAMS_H_
