#include "core/oracle.h"

#include <unordered_map>

#include "common/random.h"

namespace vadasa::core {

namespace {

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const { return HashValues(v); }
};
struct VecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

}  // namespace

IdentityOracle IdentityOracle::Generate(const Options& options) {
  // Reuse the I&G generator for the QI layout, then attach identities.
  MicrodataTable base = GenerateInflationGrowth("oracle-base", options.population,
                                                options.num_qi, options.distribution,
                                                options.seed);
  std::vector<Attribute> attrs;
  attrs.push_back({"Id", "Entity identifier", AttributeCategory::kIdentifier});
  const auto base_qis = base.QuasiIdentifierColumns();
  for (const size_t c : base_qis) {
    attrs.push_back(base.attributes()[c]);
  }
  attrs.push_back({"Identity", "Real-world identity", AttributeCategory::kIdentifier});

  IdentityOracle oracle;
  oracle.population_ = MicrodataTable("identity-oracle", std::move(attrs));
  for (size_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row;
    row.push_back(Value::Int(static_cast<int64_t>(1000000 + r)));
    for (const size_t c : base_qis) row.push_back(base.cell(r, c));
    row.push_back(Value::String("entity-" + std::to_string(r)));
    Status st = oracle.population_.AddRow(std::move(row));
    (void)st;
  }
  for (size_t i = 0; i < base_qis.size(); ++i) {
    oracle.qi_columns_.push_back(1 + i);
  }
  return oracle;
}

Result<IdentityOracle::Sample> IdentityOracle::SampleMicrodata(
    size_t n, uint64_t seed, double distortion) const {
  if (n > size()) {
    return Status::InvalidArgument("sample size exceeds the population");
  }
  // Population frequency of every QI combination (the weight estimator).
  std::unordered_map<std::vector<Value>, int64_t, VecHash, VecEq> pop_freq;
  std::vector<std::vector<Value>> pattern(size());
  for (size_t r = 0; r < size(); ++r) {
    for (const size_t c : qi_columns_) pattern[r].push_back(population_.cell(r, c));
    pop_freq[pattern[r]]++;
  }
  // Draw n distinct rows.
  Rng rng(seed);
  std::vector<size_t> indices(size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(&indices);
  indices.resize(n);

  std::vector<Attribute> attrs;
  attrs.push_back({"Id", "Company Identifier", AttributeCategory::kIdentifier});
  for (const size_t c : qi_columns_) attrs.push_back(population_.attributes()[c]);
  attrs.push_back({"Growth", "Rev. growth last 6 mths", AttributeCategory::kNonIdentifying});
  attrs.push_back({"Weight", "Sampling Weight", AttributeCategory::kWeight});

  Sample sample;
  sample.table = MicrodataTable("oracle-sample", std::move(attrs));
  for (const size_t r : indices) {
    std::vector<Value> row;
    row.push_back(population_.cell(r, 0));
    for (const size_t c : qi_columns_) {
      if (distortion > 0.0 && rng.NextDouble() < distortion) {
        // Survey measurement error: this cell was recorded as some other
        // entity's value for the same attribute.
        row.push_back(population_.cell(rng.NextBelow(size()), c));
      } else {
        row.push_back(population_.cell(r, c));
      }
    }
    row.push_back(Value::Int(rng.NextInt(-30, 300)));
    row.push_back(Value::Int(pop_freq[pattern[r]]));
    VADASA_RETURN_NOT_OK(sample.table.AddRow(std::move(row)));
    sample.truth.push_back(r);
  }
  return sample;
}

std::vector<size_t> IdentityOracle::Block(const std::vector<Value>& pattern) const {
  std::vector<size_t> out;
  for (size_t r = 0; r < size(); ++r) {
    bool match = true;
    for (size_t i = 0; i < qi_columns_.size() && match; ++i) {
      const Value& cell = population_.cell(r, qi_columns_[i]);
      match = pattern[i].is_null() || pattern[i].Equals(cell);
    }
    if (match) out.push_back(r);
  }
  return out;
}

std::string IdentityOracle::IdentityOf(size_t row) const {
  return population_.cell(row, population_.num_columns() - 1).ToString();
}

}  // namespace vadasa::core
