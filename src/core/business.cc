#include "core/business.h"

#include <algorithm>
#include <set>

namespace vadasa::core {

int OwnershipGraph::InternId(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(companies_.size());
  ids_.emplace(name, id);
  companies_.push_back(name);
  return id;
}

int OwnershipGraph::FindId(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

void OwnershipGraph::AddOwnership(const std::string& owner, const std::string& owned,
                                  double share) {
  Edge e;
  e.owner = InternId(owner);
  e.owned = InternId(owned);
  e.share = share;
  edges_.push_back(e);
}

std::vector<std::pair<std::string, std::string>> OwnershipGraph::ComputeControl() const {
  const int n = static_cast<int>(companies_.size());
  // Outgoing ownership per company.
  std::vector<std::vector<std::pair<int, double>>> own(n);
  for (const Edge& e : edges_) own[e.owner].push_back({e.owned, e.share});

  std::vector<std::pair<std::string, std::string>> out;
  for (int x = 0; x < n; ++x) {
    // Fixpoint: controlled set of x; joint shares via controlled companies.
    std::set<int> controlled;
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<double> total(n, 0.0);
      auto accumulate = [&](int holder) {
        for (const auto& [y, w] : own[holder]) total[y] += w;
      };
      accumulate(x);
      for (const int z : controlled) accumulate(z);
      for (int y = 0; y < n; ++y) {
        if (y == x || total[y] <= 0.5) continue;
        if (controlled.insert(y).second) changed = true;
      }
    }
    for (const int y : controlled) {
      out.emplace_back(companies_[x], companies_[y]);
    }
  }
  return out;
}

std::unordered_map<std::string, int> OwnershipGraph::ComputeClusters() const {
  const int n = static_cast<int>(companies_.size());
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  };
  for (const auto& [x, y] : ComputeControl()) {
    const int a = find(FindId(x));
    const int b = find(FindId(y));
    if (a != b) parent[a] = b;
  }
  std::unordered_map<std::string, int> out;
  for (int i = 0; i < n; ++i) out[companies_[i]] = find(i);
  return out;
}

bool OwnershipGraph::SameCluster(const std::string& a, const std::string& b) const {
  if (a == b) return true;
  const auto clusters = ComputeClusters();
  auto ia = clusters.find(a);
  auto ib = clusters.find(b);
  if (ia == clusters.end() || ib == clusters.end()) return false;
  return ia->second == ib->second;
}

RiskTransform MakeClusterRiskTransform(const OwnershipGraph* graph,
                                       std::string id_column) {
  // Clusters are computed once; the transform applies them per evaluation.
  auto clusters = std::make_shared<std::unordered_map<std::string, int>>(
      graph->ComputeClusters());
  return [clusters, id_column = std::move(id_column)](const MicrodataTable& table,
                                                      std::vector<double>* risks) {
    const int id_col = table.ColumnIndex(id_column);
    if (id_col < 0) return;
    // cluster id -> Π (1 - ρ_c)
    std::unordered_map<int, double> survive;
    std::vector<int> row_cluster(table.num_rows(), -1);
    for (size_t r = 0; r < table.num_rows(); ++r) {
      auto it = clusters->find(table.cell(r, static_cast<size_t>(id_col)).ToString());
      if (it == clusters->end()) continue;
      row_cluster[r] = it->second;
      auto [sit, inserted] = survive.try_emplace(it->second, 1.0);
      (void)inserted;
      sit->second *= 1.0 - std::min(1.0, std::max(0.0, (*risks)[r]));
    }
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (row_cluster[r] < 0) continue;
      (*risks)[r] = std::max((*risks)[r], 1.0 - survive[row_cluster[r]]);
    }
  };
}

}  // namespace vadasa::core
