#include "core/suda.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "core/columnar.h"
#include "obs/trace.h"

namespace vadasa::core {

namespace {

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const { return HashValues(v); }
};
struct VecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};
struct ValueIsNull {
  bool operator()(const Value& v) const { return v.is_null(); }
};

struct CodeVecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ v.size();
    for (const uint32_t x : v) {
      uint64_t z = (h ^ x) + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return static_cast<size_t>(h);
  }
};
struct CodeVecEq {
  bool operator()(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) const {
    return a == b;
  }
};
struct CodeIsNull {
  bool operator()(uint32_t code) const { return IsNullCode(code); }
};

int Popcount(uint32_t m) { return __builtin_popcount(m); }

/// Enumerates all masks over `q` bits with exactly `s` bits set.
void CombosOfSize(int q, int s, std::vector<uint32_t>* out) {
  const uint32_t limit = 1u << q;
  for (uint32_t m = 1; m < limit; ++m) {
    if (Popcount(m) == s) out->push_back(m);
  }
}

/// Outcome of evaluating one combination for one candidate row: the row is
/// sample unique on the combination; `minimal` iff no prior-level unique
/// subset exists.
struct UniqueHit {
  uint32_t row = 0;
  bool minimal = false;
};

std::string DetailsMemoKey(const RiskContext& context, const SudaOptions& options,
                           const std::vector<size_t>& qis) {
  std::string key = "suda-details/k=" + std::to_string(context.k) +
                    "/max=" + std::to_string(options.max_search_size) +
                    "/exh=" + std::to_string(options.exhaustive ? 1 : 0) + "/qis=";
  for (const size_t c : qis) key += std::to_string(c) + ",";
  return key;
}

/// The MSU search over pre-projected rows. Elem is a Value (row plane) or a
/// dictionary code (columnar plane); code equality coincides with
/// Value::Equals and the null-band test with Value::is_null, and every
/// decision (prune, candidate, minimality) plus the merge order is
/// plane-independent, so both instantiations produce identical details.
template <class Hash, class Eq, class IsNull, class Elem>
void FindMsus(const std::vector<std::vector<Elem>>& proj, int q, int max_size,
              bool exhaustive, SudaDetails* details) {
  const size_t n = proj.size();

  // Candidates: rows unique on the full AnonSet (a sample unique on any
  // subset implies uniqueness on the full set).
  std::vector<uint32_t> candidates;
  {
    std::unordered_map<std::vector<Elem>, int, Hash, Eq> counts;
    counts.reserve(n * 2);
    for (size_t r = 0; r < n; ++r) counts[proj[r]]++;
    for (size_t r = 0; r < n; ++r) {
      if (counts[proj[r]] == 1) candidates.push_back(static_cast<uint32_t>(r));
    }
  }
  if (candidates.empty()) return;

  // Per candidate: masks of combinations already known to be sample unique
  // (used both for minimality and for pruning). Within one level this is
  // frozen: two distinct same-size masks are never proper subsets of each
  // other, so prune and minimality decisions only ever read entries from
  // strictly smaller levels — which is what makes the level parallelizable.
  std::unordered_map<uint32_t, std::vector<uint32_t>> unique_combos;
  for (const uint32_t r : candidates) unique_combos[r] = {};

  for (int s = 1; s <= max_size; ++s) {
    std::vector<uint32_t> combos;
    CombosOfSize(q, s, &combos);

    // Prune decisions first (sequential, cheap — subset tests only).
    std::vector<uint32_t> eval;
    eval.reserve(combos.size());
    for (const uint32_t mask : combos) {
      if (!exhaustive) {
        // Prune: skip the combination when every candidate already owns a
        // unique proper subset of it — it cannot produce a new MSU.
        bool needed = false;
        for (const uint32_t r : candidates) {
          bool covered = false;
          for (const uint32_t u : unique_combos[r]) {
            if ((u & mask) == u) {
              covered = true;
              break;
            }
          }
          if (!covered) {
            needed = true;
            break;
          }
        }
        if (!needed) {
          ++details->combos_pruned;
          continue;
        }
      }
      eval.push_back(mask);
    }
    details->combos_evaluated += eval.size();

    // Evaluate the level's combinations concurrently; each produces its
    // candidate hits against the frozen prior-level unique_combos.
    std::vector<std::vector<UniqueHit>> hits(eval.size());
    ThreadPool::Global().ParallelFor(
        0, eval.size(), 1, [&](size_t lo, size_t hi, size_t /*shard*/) {
          std::vector<Elem> key;
          for (size_t i = lo; i < hi; ++i) {
            const uint32_t mask = eval[i];
            // Count projections of ALL rows onto this combination.
            std::unordered_map<std::vector<Elem>, int, Hash, Eq> counts;
            counts.reserve(n * 2);
            for (size_t r = 0; r < n; ++r) {
              key.clear();
              for (int b = 0; b < q; ++b) {
                if (mask & (1u << b)) key.push_back(proj[r][b]);
              }
              counts[key]++;
            }
            for (const uint32_t r : candidates) {
              key.clear();
              bool has_null = false;
              for (int b = 0; b < q; ++b) {
                if (mask & (1u << b)) {
                  if (IsNull{}(proj[r][b])) has_null = true;
                  key.push_back(proj[r][b]);
                }
              }
              // A combination containing a suppressed cell is invisible to
              // the attacker and cannot single the row out: local suppression
              // kills every MSU through the suppressed column.
              if (has_null) continue;
              if (counts[key] != 1) continue;
              // Sample unique. Minimal iff no previously found unique subset.
              bool minimal = true;
              for (const uint32_t u : unique_combos.at(r)) {
                if ((u & mask) == u) {
                  minimal = false;
                  break;
                }
              }
              hits[i].push_back(UniqueHit{r, minimal});
            }
          }
        });

    // Merge in combination order — reproduces the sequential result exactly.
    for (size_t i = 0; i < eval.size(); ++i) {
      const uint32_t mask = eval[i];
      for (const UniqueHit& hit : hits[i]) {
        unique_combos[hit.row].push_back(mask);
        if (hit.minimal) {
          details->msus[hit.row].push_back(MinimalSampleUnique{mask, s});
        }
      }
    }
  }
}

}  // namespace

Result<SudaDetails> SudaRisk::ComputeDetails(const MicrodataTable& table,
                                             const RiskContext& context,
                                             RiskEvalCache* cache) const {
  const auto qis = context.ResolveQiColumns(table);
  const int q = static_cast<int>(qis.size());
  if (q > 20) {
    return Status::InvalidArgument("SUDA supports at most 20 quasi-identifiers, got " +
                                   std::to_string(q));
  }
  const std::string memo_key = DetailsMemoKey(context, options_, qis);
  if (cache != nullptr) {
    if (auto memo = cache->Memo(memo_key)) {
      return *std::static_pointer_cast<SudaDetails>(memo);
    }
  }
  const size_t n = table.num_rows();
  SudaDetails details;
  details.msus.assign(n, {});
  if (q == 0 || n == 0) return details;

  const int max_size =
      options_.max_search_size > 0 ? std::min(options_.max_search_size, q)
                                   : std::min(context.k, q);

  if (ActiveDataPlane() == DataPlane::kColumnar) {
    // Columnar plane: project every row once onto the full AnonSet as
    // dictionary codes; the per-combination counting maps then hash and
    // compare flat words. Reuse the cache's (or the context's warm) view so
    // the interning is shared with the grouping measures.
    std::shared_ptr<const ColumnarView> view =
        cache != nullptr ? cache->SharedView(table) : context.warm_view;
    if (view == nullptr || view->num_rows() != n) {
      view = std::make_shared<ColumnarView>(table);
    }
    view->EnsureColumns(table, qis);
    std::vector<const uint32_t*> cols;
    cols.reserve(qis.size());
    for (const size_t c : qis) cols.push_back(view->Codes(c).data());
    std::vector<std::vector<uint32_t>> proj(n);
    for (size_t r = 0; r < n; ++r) {
      proj[r].reserve(cols.size());
      for (const uint32_t* col : cols) proj[r].push_back(col[r]);
    }
    FindMsus<CodeVecHash, CodeVecEq, CodeIsNull>(proj, q, max_size,
                                                 options_.exhaustive, &details);
  } else {
    // Row plane: project every row once onto the full AnonSet as Values.
    std::vector<std::vector<Value>> proj(n);
    for (size_t r = 0; r < n; ++r) {
      proj[r].reserve(qis.size());
      for (const size_t c : qis) proj[r].push_back(table.cell(r, c));
    }
    FindMsus<VecHash, VecEq, ValueIsNull>(proj, q, max_size, options_.exhaustive,
                                          &details);
  }
  if (cache != nullptr) cache->SetMemo(memo_key, std::make_shared<SudaDetails>(details));
  return details;
}

Result<std::vector<double>> SudaRisk::ComputeRisks(const MicrodataTable& table,
                                                   const RiskContext& context,
                                                   RiskEvalCache* cache) const {
  obs::Span span("risk.compute.suda");
  VADASA_ASSIGN_OR_RETURN(const SudaDetails details,
                          ComputeDetails(table, context, cache));
  std::vector<double> risks(table.num_rows(), 0.0);
  for (size_t r = 0; r < risks.size(); ++r) {
    for (const MinimalSampleUnique& msu : details.msus[r]) {
      // Rule 8: dangerous when very few attributes disclose the identity.
      if (msu.size < context.k) {
        risks[r] = 1.0;
        break;
      }
    }
  }
  return risks;
}

Result<std::vector<double>> SudaRisk::ComputeScores(const MicrodataTable& table,
                                                    const RiskContext& context,
                                                    RiskEvalCache* cache) const {
  VADASA_ASSIGN_OR_RETURN(const SudaDetails details,
                          ComputeDetails(table, context, cache));
  const auto qis = context.ResolveQiColumns(table);
  const int m = static_cast<int>(qis.size());
  std::vector<double> scores(table.num_rows(), 0.0);
  for (size_t r = 0; r < scores.size(); ++r) {
    for (const MinimalSampleUnique& msu : details.msus[r]) {
      scores[r] += std::pow(2.0, std::max(0, m - msu.size));
    }
  }
  return scores;
}

std::vector<double> NormalizeSudaScores(std::vector<double> scores) {
  double max_score = 0.0;
  for (const double s : scores) max_score = std::max(max_score, s);
  if (max_score > 0.0) {
    for (double& s : scores) s /= max_score;
  }
  return scores;
}

std::string SudaRisk::Explain(const MicrodataTable& table, const RiskContext& context,
                              size_t row, double risk, RiskEvalCache* cache) const {
  auto details = ComputeDetails(table, context, cache);
  if (!details.ok()) return "suda: " + details.status().ToString();
  const auto qis = context.ResolveQiColumns(table);
  const auto& msus = details->msus[row];
  if (msus.empty()) return "no sample unique: tuple is not SUDA-risky";
  std::string out = std::to_string(msus.size()) + " MSU(s):";
  for (const auto& msu : msus) {
    out += " {";
    bool first = true;
    for (size_t b = 0; b < qis.size(); ++b) {
      if (msu.column_mask & (1u << b)) {
        if (!first) out += ",";
        first = false;
        out += table.attributes()[qis[b]].name + "=" + table.cell(row, qis[b]).ToString();
      }
    }
    out += "}";
  }
  out += risk > 0.5 ? " -> risky (an MSU smaller than k exists)" : " -> acceptable";
  return out;
}

}  // namespace vadasa::core
