#include "core/programs.h"

namespace vadasa::core {

const std::vector<AlgorithmProgram>& AlgorithmLibrary() {
  static const std::vector<AlgorithmProgram>* kLibrary = new std::vector<
      AlgorithmProgram>{
      {"algorithm1-categorization",
       "Attribute categorization via a recursive experience base + EGD",
       R"prog(% Algorithm 1. Requires att/2, expbase/2 and the #similar external.
cat(M, A, C) :- att(M, A), expbase(A1, C), #similar(A, A1).
expbase(A, C) :- cat(M, A, C).
cat(M, A, C) :- att(M, A).                 % Rule 1: ∃C (labelled null)
C1 = C2 :- cat(M, A, C1), cat(M, A, C2).   % Rule 4: one category (EGD)
@output("cat").
)prog"},

      {"algorithm3-reidentification",
       "Re-identification-based risk: rho = 1 / msum of sampling weights",
       R"prog(% Algorithm 3. Requires tuple/2 and qweight/2.
tuplea(VSet, S) :- tuple(I, VSet), qweight(I, W), S = msum(W, <I>).
riskoutput(I, R) :- tuple(I, VSet), tuplea(VSet, S), R = 1 / S.
@output("riskoutput").
)prog"},

      {"algorithm4-kanonymity",
       "k-anonymity: risky iff the combination occurs fewer than k times",
       R"prog(% Algorithm 4 (k = 2; edit the constant for other thresholds).
tuplea(VSet, N) :- tuple(I, VSet), N = mcount(<I>).
riskoutput(I, R) :- tuple(I, VSet), tuplea(VSet, N), R = if(lt(N, 2), 1, 0).
@output("riskoutput").
)prog"},

      {"algorithm5-individual-risk",
       "Benedetti-Franconi individual risk: rho = f / sum of weights",
       R"prog(% Algorithm 5. Requires tuple/2 and qweight/2.
tuplea(VSet, R) :- tuple(I, VSet), qweight(I, W),
                   F = mcount(<I>), S = msum(W, <I>), R = F / S.
riskoutput(I, R) :- tuple(I, VSet), tuplea(VSet, R).
@output("riskoutput").
)prog"},

      {"algorithm6-suda",
       "SUDA: minimal sample uniques via recursive combination extension",
       R"prog(% Algorithm 6. Requires qival/3 (exploded QI name-value pairs).
comb(I, S) :- qival(I, A, V), S = set(list(A, V)).
comb(I, S2) :- comb(I, S1), qival(I, A, V),
               contains(S1, list(A, V)) == false,
               S2 = union(S1, set(list(A, V))).
tuplec(I, S) :- comb(I, S).
su(S, N) :- tuplec(I, S), N = mcount(<I>).
hassu(I, S) :- tuplec(I, S), su(S, 1), not su(S, 2).
nonminimal(I, S) :- hassu(I, S), hassu(I, S1), S1 != S, S1 subset S.
msu(I, S) :- hassu(I, S), not nonminimal(I, S).
% Rule 8 (k = 3): dangerous when an MSU has fewer than k attributes.
riskoutput(I, 1) :- msu(I, S), size(S) < 3.
@output("msu").
@output("riskoutput").
)prog"},

      {"algorithm7-local-suppression",
       "Local suppression: replace a quasi-identifier with a fresh labelled "
       "null (one candidate tuple version per suppressible attribute)",
       R"prog(% Algorithm 7. Requires anonymize/2 (tuple id + VSet pairset) and
% qid/1 facts naming the quasi-identifier attributes.
% The existential Z of the paper's rule is the freshnull head variable.
freshnull(I, A, Z) :- anonymize(I, VSet), qid(A),
                      has_key(VSet, A) == true,
                      is_null(get(VSet, A)) == false.
tuple(I, S2) :- anonymize(I, VSet), freshnull(I, A, Z),
                S2 = with(VSet, A, Z).
@output("tuple").
)prog"},

      {"algorithm8-global-recoding",
       "Global recoding: climb the domain hierarchy one level for a "
       "quasi-identifier value",
       R"prog(% Algorithm 8. Requires anonymize/2, qid/1 and the hierarchy KB:
% typeof(A, X), subtypeof(X, Y), instof(Z, Y), isa(V, Z).
tuple(I, S2) :- anonymize(I, VSet), qid(A),
                typeof(A, X), subtypeof(X, Y),
                isa(V, Z), instof(Z, Y),
                V == get(VSet, A),
                S2 = with(VSet, A, Z).
@output("tuple").
)prog"},

      {"section44-company-control",
       "Company control closure: direct majority or joint majority via "
       "controlled subsidiaries",
       R"prog(% Section 4.4. Requires own/3.
rel(X, Y) :- own(X, Y, W), W > 0.5.
rel(X, Y) :- rel(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5.
@output("rel").
)prog"},

      {"algorithm9-cluster-risk",
       "Cluster risk 1 - mprod(1 - rho) over linked entities",
       R"prog(% Algorithm 9 risk combination. Requires memberrisk/3.
clusterrisk(C, R) :- memberrisk(C, E, Q), S = 1 - Q,
                     P = mprod(S, <E>), R = 1 - P.
@output("clusterrisk").
)prog"},
  };
  return *kLibrary;
}

Result<AlgorithmProgram> FindAlgorithmProgram(const std::string& name) {
  for (const AlgorithmProgram& p : AlgorithmLibrary()) {
    if (p.name == name) return p;
  }
  return Status::NotFound("no shipped program named " + name);
}

}  // namespace vadasa::core
