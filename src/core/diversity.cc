#include "core/diversity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/group_index.h"

namespace vadasa::core {

namespace {

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const { return HashValues(v); }
};
struct VecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

bool PatternsCompatible(const std::vector<Value>& a, const std::vector<Value>& b,
                        NullSemantics semantics) {
  for (size_t i = 0; i < a.size(); ++i) {
    const bool match = semantics == NullSemantics::kMaybeMatch
                           ? a[i].MaybeEquals(b[i])
                           : a[i].Equals(b[i]);
    if (!match) return false;
  }
  return true;
}

}  // namespace

Result<SensitiveStats> ComputeSensitiveStats(const MicrodataTable& table,
                                             const std::vector<size_t>& qi_columns,
                                             size_t sensitive_column,
                                             NullSemantics semantics) {
  if (sensitive_column >= table.num_columns()) {
    return Status::OutOfRange("sensitive column out of range");
  }
  for (const size_t c : qi_columns) {
    if (c == sensitive_column) {
      return Status::InvalidArgument(
          "the sensitive attribute cannot be a quasi-identifier");
    }
  }
  const size_t n = table.num_rows();
  SensitiveStats stats;
  stats.distinct_values.assign(n, 0);
  stats.distribution_distance.assign(n, 0.0);
  if (n == 0) return stats;

  // Collapse rows into distinct QI patterns, collecting per-pattern sensitive
  // histograms; sensitive domains are small, so cross-pattern merges are
  // cheap.
  struct Pattern {
    std::vector<Value> values;
    std::map<Value, double> sensitive;
    double count = 0.0;
  };
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> ids;
  std::vector<Pattern> patterns;
  std::vector<size_t> row_pattern(n);
  std::map<Value, double> global;
  for (size_t r = 0; r < n; ++r) {
    std::vector<Value> p;
    p.reserve(qi_columns.size());
    for (const size_t c : qi_columns) p.push_back(table.cell(r, c));
    auto it = ids.find(p);
    size_t id;
    if (it == ids.end()) {
      id = patterns.size();
      ids.emplace(p, id);
      Pattern pat;
      pat.values = std::move(p);
      patterns.push_back(std::move(pat));
    } else {
      id = it->second;
    }
    const Value& s = table.cell(r, sensitive_column);
    patterns[id].sensitive[s] += 1.0;
    patterns[id].count += 1.0;
    global[s] += 1.0;
    row_pattern[r] = id;
  }

  // Per pattern: merge the histograms of every compatible pattern. Quadratic
  // in #patterns, which collapse heavily on categorical microdata.
  std::vector<std::map<Value, double>> merged(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (size_t j = 0; j < patterns.size(); ++j) {
      if (!PatternsCompatible(patterns[i].values, patterns[j].values, semantics)) {
        continue;
      }
      for (const auto& [value, count] : patterns[j].sensitive) {
        merged[i][value] += count;
      }
    }
  }

  const double total = static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    const auto& hist = merged[row_pattern[r]];
    stats.distinct_values[r] = hist.size();
    double mass = 0.0;
    for (const auto& [value, count] : hist) {
      (void)value;
      mass += count;
    }
    double tv = 0.0;
    for (const auto& [value, gcount] : global) {
      auto it = hist.find(value);
      const double p_group = it == hist.end() ? 0.0 : it->second / mass;
      tv += std::fabs(p_group - gcount / total);
    }
    stats.distribution_distance[r] = tv / 2.0;
  }
  return stats;
}

namespace {

Result<size_t> ResolveSensitiveColumn(const MicrodataTable& table,
                                      const std::string& attribute) {
  const int col = table.ColumnIndex(attribute);
  if (col < 0) return Status::NotFound("no attribute named " + attribute);
  return static_cast<size_t>(col);
}

/// ComputeSensitiveStats through the cache's memo slots: one computation per
/// (sensitive column, projection, semantics) per table version.
Result<std::shared_ptr<const SensitiveStats>> CachedSensitiveStats(
    const MicrodataTable& table, const std::vector<size_t>& qis, size_t col,
    NullSemantics semantics, RiskEvalCache* cache) {
  std::string key;
  if (cache != nullptr) {
    key = "sensitive-stats/col=" + std::to_string(col) +
          "/sem=" + std::to_string(static_cast<int>(semantics)) + "/qis=";
    for (const size_t c : qis) key += std::to_string(c) + ",";
    if (auto memo = cache->Memo(key)) {
      return std::static_pointer_cast<const SensitiveStats>(memo);
    }
  }
  VADASA_ASSIGN_OR_RETURN(SensitiveStats stats,
                          ComputeSensitiveStats(table, qis, col, semantics));
  auto shared = std::make_shared<SensitiveStats>(std::move(stats));
  if (cache != nullptr) cache->SetMemo(key, shared);
  return std::shared_ptr<const SensitiveStats>(shared);
}

}  // namespace

Result<std::vector<double>> LDiversityRisk::ComputeRisks(
    const MicrodataTable& table, const RiskContext& context,
    RiskEvalCache* cache) const {
  VADASA_ASSIGN_OR_RETURN(const size_t col,
                          ResolveSensitiveColumn(table, sensitive_attribute_));
  VADASA_ASSIGN_OR_RETURN(
      const auto stats,
      CachedSensitiveStats(table, context.ResolveQiColumns(table), col,
                           context.semantics, cache));
  std::vector<double> risks(table.num_rows());
  for (size_t r = 0; r < risks.size(); ++r) {
    risks[r] = stats->distinct_values[r] < static_cast<size_t>(l_) ? 1.0 : 0.0;
  }
  return risks;
}

std::string LDiversityRisk::Explain(const MicrodataTable& table,
                                    const RiskContext& context, size_t row,
                                    double risk, RiskEvalCache* cache) const {
  auto col = ResolveSensitiveColumn(table, sensitive_attribute_);
  if (!col.ok()) return col.status().ToString();
  auto stats = CachedSensitiveStats(table, context.ResolveQiColumns(table), *col,
                                    context.semantics, cache);
  if (!stats.ok()) return stats.status().ToString();
  return "QI group exposes " + std::to_string((*stats)->distinct_values[row]) +
         " distinct value(s) of " + sensitive_attribute_ + "; l=" + std::to_string(l_) +
         (risk > 0.5 ? " -> homogeneous group, risky" : " -> diverse enough");
}

Result<std::vector<double>> TClosenessRisk::ComputeRisks(
    const MicrodataTable& table, const RiskContext& context,
    RiskEvalCache* cache) const {
  VADASA_ASSIGN_OR_RETURN(const size_t col,
                          ResolveSensitiveColumn(table, sensitive_attribute_));
  VADASA_ASSIGN_OR_RETURN(
      const auto stats,
      CachedSensitiveStats(table, context.ResolveQiColumns(table), col,
                           context.semantics, cache));
  std::vector<double> risks(table.num_rows());
  for (size_t r = 0; r < risks.size(); ++r) {
    risks[r] = stats->distribution_distance[r] > t_ ? 1.0 : 0.0;
  }
  return risks;
}

}  // namespace vadasa::core
