#ifndef VADASA_CORE_INFOLOSS_H_
#define VADASA_CORE_INFOLOSS_H_

#include <cstddef>

#include "core/hierarchy.h"
#include "core/microdata.h"

namespace vadasa::core {

/// Information-loss accounting (Section 5.1, Fig. 7b).
struct InformationLoss {
  /// Paper metric: injected nulls weighted by the maximum number of values
  /// that could theoretically be removed — the quasi-identifier cells of the
  /// initially risky tuples. In [0,1] (0 when nothing was risky).
  double paper_metric = 0.0;
  /// Fraction of all quasi-identifier cells that are suppressed.
  double suppressed_cell_fraction = 0.0;
  /// Average generalization height consumed by recoding, normalized by the
  /// total available height (0 when no hierarchy provided).
  double generalization_loss = 0.0;
};

/// Computes the paper's loss metric from cycle counters.
double PaperInformationLoss(size_t nulls_injected, size_t initial_risky_tuples,
                            size_t num_quasi_identifiers);

/// Full scan of an anonymized table against its original.
/// `hierarchy` may be nullptr (generalization_loss stays 0).
InformationLoss MeasureInformationLoss(const MicrodataTable& original,
                                       const MicrodataTable& anonymized,
                                       const Hierarchy* hierarchy);

}  // namespace vadasa::core

#endif  // VADASA_CORE_INFOLOSS_H_
