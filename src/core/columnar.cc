#include "core/columnar.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vadasa::core {

namespace {

std::atomic<int>& PlaneFlag() {
  static std::atomic<int>* flag = [] {
    auto* f = new std::atomic<int>(static_cast<int>(DataPlane::kColumnar));
    const char* env = std::getenv("VADASA_DATA_PLANE");
    if (env != nullptr && std::string(env) == "row") {
      f->store(static_cast<int>(DataPlane::kRow));
    }
    return f;
  }();
  return *flag;
}

void RecordInternSeconds(double seconds) {
#ifndef VADASA_DISABLE_OBS
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().histogram("columnar.intern_seconds");
  histogram->Record(seconds);
#else
  (void)seconds;
#endif
}

}  // namespace

DataPlane ActiveDataPlane() {
  return static_cast<DataPlane>(PlaneFlag().load(std::memory_order_relaxed));
}

DataPlane SetDataPlane(DataPlane plane) {
  return static_cast<DataPlane>(
      PlaneFlag().exchange(static_cast<int>(plane), std::memory_order_relaxed));
}

ColumnarView::ColumnarView(const MicrodataTable& table)
    : num_rows_(table.num_rows()), columns_(table.num_columns()) {
  weights_.resize(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) weights_[r] = table.RowWeight(r);
}

ColumnarView::ColumnarView(const ColumnarView& parent,
                           const MicrodataTable& new_table,
                           const std::vector<uint32_t>& deleted_old_rows,
                           const std::vector<uint32_t>& changed_new_rows)
    : num_rows_(new_table.num_rows()), columns_(new_table.num_columns()) {
  obs::Span span("columnar.delta_clone");
  std::lock_guard<std::mutex> lock(parent.materialize_mutex_);
  const size_t old_rows = parent.num_rows_;
  // Compacted copy of a parent row-array: drop deleted rows, keep order,
  // leave zeroed tail slots for appended rows (the changed-row pass below
  // overwrites every one of them).
  auto compact = [&](const auto& src, auto* dst) {
    dst->assign(num_rows_, {});
    size_t w = 0;
    size_t next_del = 0;
    for (size_t r = 0; r < old_rows; ++r) {
      if (next_del < deleted_old_rows.size() && deleted_old_rows[next_del] == r) {
        ++next_del;
        continue;
      }
      (*dst)[w++] = src[r];
    }
  };
  for (size_t c = 0; c < columns_.size() && c < parent.columns_.size(); ++c) {
    const Column& src = parent.columns_[c];
    if (!src.materialized) continue;
    Column& column = columns_[c];
    column.dict.CopyFrom(src.dict);
    compact(src.codes, &column.codes);
    for (const uint32_t r : changed_new_rows) {
      column.codes[r] = column.dict.Intern(new_table.cell(r, c));
    }
    column.materialized = true;
    VADASA_METRIC_COUNT("columnar.codes_bytes", num_rows_ * sizeof(uint32_t));
    VADASA_METRIC_COUNT("columnar.columns_materialized", 1);
  }
  compact(parent.weights_, &weights_);
  for (const uint32_t r : changed_new_rows) {
    weights_[r] = new_table.RowWeight(r);
  }
  VADASA_METRIC_COUNT("columnar.row_updates", changed_new_rows.size());
}

void ColumnarView::EnsureColumns(const MicrodataTable& table,
                                 const std::vector<size_t>& cols) const {
  std::lock_guard<std::mutex> lock(materialize_mutex_);
  const auto t0 = std::chrono::steady_clock::now();
  size_t interned_cells = 0;
  for (const size_t c : cols) {
    Column& column = columns_[c];
    if (column.materialized) continue;
    obs::Span span("columnar.materialize_column");
    column.codes.resize(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      column.codes[r] = column.dict.Intern(table.cell(r, c));
    }
    column.materialized = true;
    interned_cells += num_rows_;
    VADASA_METRIC_COUNT("columnar.codes_bytes", num_rows_ * sizeof(uint32_t));
    VADASA_METRIC_COUNT("columnar.dict_entries", column.dict.size());
    VADASA_METRIC_COUNT("columnar.columns_materialized", 1);
  }
  if (interned_cells > 0) {
    RecordInternSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
}

void ColumnarView::UpdateRows(const MicrodataTable& table,
                              const std::vector<uint32_t>& rows) {
  obs::Span span("columnar.update_rows");
  VADASA_METRIC_COUNT("columnar.row_updates", rows.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column& column = columns_[c];
    if (!column.materialized) continue;
    for (const uint32_t r : rows) {
      column.codes[r] = column.dict.Intern(table.cell(r, c));
    }
  }
  for (const uint32_t r : rows) weights_[r] = table.RowWeight(r);
}

size_t ColumnarView::codes_bytes() const {
  std::lock_guard<std::mutex> lock(materialize_mutex_);
  size_t bytes = 0;
  for (const Column& column : columns_) {
    bytes += column.codes.capacity() * sizeof(uint32_t);
  }
  return bytes + weights_.capacity() * sizeof(double);
}

size_t ColumnarView::dict_entries() const {
  std::lock_guard<std::mutex> lock(materialize_mutex_);
  size_t entries = 0;
  for (const Column& column : columns_) entries += column.dict.size();
  return entries;
}

}  // namespace vadasa::core
