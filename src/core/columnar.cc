#include "core/columnar.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vadasa::core {

namespace {

std::atomic<int>& PlaneFlag() {
  static std::atomic<int>* flag = [] {
    auto* f = new std::atomic<int>(static_cast<int>(DataPlane::kColumnar));
    const char* env = std::getenv("VADASA_DATA_PLANE");
    if (env != nullptr && std::string(env) == "row") {
      f->store(static_cast<int>(DataPlane::kRow));
    }
    return f;
  }();
  return *flag;
}

void RecordInternSeconds(double seconds) {
#ifndef VADASA_DISABLE_OBS
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().histogram("columnar.intern_seconds");
  histogram->Record(seconds);
#else
  (void)seconds;
#endif
}

}  // namespace

DataPlane ActiveDataPlane() {
  return static_cast<DataPlane>(PlaneFlag().load(std::memory_order_relaxed));
}

DataPlane SetDataPlane(DataPlane plane) {
  return static_cast<DataPlane>(
      PlaneFlag().exchange(static_cast<int>(plane), std::memory_order_relaxed));
}

ColumnarView::ColumnarView(const MicrodataTable& table)
    : num_rows_(table.num_rows()), columns_(table.num_columns()) {
  weights_.resize(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) weights_[r] = table.RowWeight(r);
}

void ColumnarView::EnsureColumns(const MicrodataTable& table,
                                 const std::vector<size_t>& cols) const {
  std::lock_guard<std::mutex> lock(materialize_mutex_);
  const auto t0 = std::chrono::steady_clock::now();
  size_t interned_cells = 0;
  for (const size_t c : cols) {
    Column& column = columns_[c];
    if (column.materialized) continue;
    obs::Span span("columnar.materialize_column");
    column.codes.resize(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      column.codes[r] = column.dict.Intern(table.cell(r, c));
    }
    column.materialized = true;
    interned_cells += num_rows_;
    VADASA_METRIC_COUNT("columnar.codes_bytes", num_rows_ * sizeof(uint32_t));
    VADASA_METRIC_COUNT("columnar.dict_entries", column.dict.size());
    VADASA_METRIC_COUNT("columnar.columns_materialized", 1);
  }
  if (interned_cells > 0) {
    RecordInternSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
}

void ColumnarView::UpdateRows(const MicrodataTable& table,
                              const std::vector<uint32_t>& rows) {
  obs::Span span("columnar.update_rows");
  VADASA_METRIC_COUNT("columnar.row_updates", rows.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column& column = columns_[c];
    if (!column.materialized) continue;
    for (const uint32_t r : rows) {
      column.codes[r] = column.dict.Intern(table.cell(r, c));
    }
  }
  for (const uint32_t r : rows) weights_[r] = table.RowWeight(r);
}

size_t ColumnarView::codes_bytes() const {
  std::lock_guard<std::mutex> lock(materialize_mutex_);
  size_t bytes = 0;
  for (const Column& column : columns_) {
    bytes += column.codes.capacity() * sizeof(uint32_t);
  }
  return bytes + weights_.capacity() * sizeof(double);
}

size_t ColumnarView::dict_entries() const {
  std::lock_guard<std::mutex> lock(materialize_mutex_);
  size_t entries = 0;
  for (const Column& column : columns_) entries += column.dict.size();
  return entries;
}

}  // namespace vadasa::core
