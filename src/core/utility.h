#ifndef VADASA_CORE_UTILITY_H_
#define VADASA_CORE_UTILITY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/microdata.h"

namespace vadasa::core {

/// Statistical-utility preservation metrics, quantifying desideratum (v):
/// anonymization should remove the minimum information needed while keeping
/// the data statistically sound. All metrics compare an anonymized release
/// against the original microdata DB (same shape).

/// Per-attribute marginal comparison.
struct MarginalDistance {
  std::string attribute;
  /// Total variation distance between the categorical marginals, treating
  /// suppressed (null) cells as removed mass redistributed proportionally.
  double total_variation = 0.0;
  /// Fraction of this column's cells that are suppressed.
  double suppressed_fraction = 0.0;
};

/// Whole-release utility summary.
struct UtilityReport {
  std::vector<MarginalDistance> marginals;
  /// Maximum total-variation distance across quasi-identifier marginals.
  double max_total_variation = 0.0;
  /// Weighted-mean preservation of the first numeric non-identifying
  /// attribute (1.0 = perfectly preserved; 0 if none exists).
  double weighted_mean_ratio = 1.0;
  /// Fraction of pairwise QI contingency cells (2-way marginals) whose
  /// relative frequency moved by more than 1 percentage point.
  double disturbed_pairs_fraction = 0.0;

  std::string ToString() const;
};

/// Computes the report. Fails unless the tables have identical shape.
Result<UtilityReport> MeasureUtility(const MicrodataTable& original,
                                     const MicrodataTable& anonymized);

/// Total variation distance between the value distributions of one column in
/// two same-height tables (nulls excluded from the anonymized side, mass
/// renormalized). Exposed for tests and ad-hoc analyses.
double ColumnTotalVariation(const MicrodataTable& original,
                            const MicrodataTable& anonymized, size_t column);

}  // namespace vadasa::core

#endif  // VADASA_CORE_UTILITY_H_
