#include "core/attack.h"

#include <sstream>

#include "common/random.h"

namespace vadasa::core {

std::string AttackResult::ToString() const {
  std::ostringstream os;
  os << "attempted=" << attempted << " reidentified=" << reidentified
     << " exact_blocks=" << exact_blocks << " avg_block_size=" << avg_block_size
     << " success_rate=" << success_rate;
  return os.str();
}

AttackResult RunLinkageAttack(const MicrodataTable& released,
                              const std::vector<size_t>& released_qi_columns,
                              const IdentityOracle& oracle,
                              const std::vector<size_t>& truth, uint64_t seed) {
  AttackResult result;
  Rng rng(seed);
  double block_total = 0.0;
  for (size_t r = 0; r < released.num_rows(); ++r) {
    ++result.attempted;
    std::vector<Value> pattern;
    pattern.reserve(released_qi_columns.size());
    for (const size_t c : released_qi_columns) pattern.push_back(released.cell(r, c));
    const std::vector<size_t> block = oracle.Block(pattern);
    block_total += static_cast<double>(block.size());
    if (block.empty()) continue;  // The respondent evaded blocking entirely.
    if (block.size() == 1) ++result.exact_blocks;
    // Matching: an attacker without side information guesses uniformly
    // within the cohort.
    const size_t guess = block[rng.NextBelow(block.size())];
    if (r < truth.size() && guess == truth[r]) ++result.reidentified;
  }
  if (result.attempted > 0) {
    result.avg_block_size = block_total / static_cast<double>(result.attempted);
    result.success_rate =
        static_cast<double>(result.reidentified) / static_cast<double>(result.attempted);
  }
  return result;
}

}  // namespace vadasa::core
