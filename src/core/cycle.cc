#include "core/cycle.h"

#include <chrono>

#include "core/columnar.h"
#include "core/infoloss.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vadasa::core {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::vector<Value> QiPattern(const MicrodataTable& table,
                             const std::vector<size_t>& qis, size_t row) {
  std::vector<Value> p;
  p.reserve(qis.size());
  for (const size_t c : qis) p.push_back(table.cell(row, c));
  return p;
}

bool MaybeMatchesAny(const std::vector<Value>& pattern,
                     const std::vector<std::vector<Value>>& others) {
  for (const auto& o : others) {
    bool match = true;
    for (size_t i = 0; i < pattern.size() && match; ++i) {
      match = pattern[i].MaybeEquals(o[i]);
    }
    if (match) return true;
  }
  return false;
}

/// Code-space QI projection of a row's *current* cells. Translated through
/// the view's dictionaries (CodeForQuery) rather than read from the code
/// arrays, because the shared view is only refreshed at iteration end while
/// this guard must see mid-iteration mutations.
std::vector<uint32_t> QiCodePattern(const ColumnarView& view,
                                    const MicrodataTable& table,
                                    const std::vector<size_t>& qis, size_t row) {
  std::vector<uint32_t> p;
  p.reserve(qis.size());
  for (const size_t c : qis) p.push_back(view.CodeForQuery(c, table.cell(row, c)));
  return p;
}

/// Maybe-match over packed codes: equal code, or either side in the null
/// band (a labelled null matches anything — Value::MaybeEquals).
bool MaybeMatchesAnyCodes(const std::vector<uint32_t>& pattern,
                          const std::vector<std::vector<uint32_t>>& others) {
  for (const auto& o : others) {
    bool match = true;
    for (size_t i = 0; i < pattern.size() && match; ++i) {
      match = pattern[i] == o[i] || IsNullCode(pattern[i]) || IsNullCode(o[i]);
    }
    if (match) return true;
  }
  return false;
}

/// Per-run meter set over a local registry — the single source CycleStats is
/// derived from. Counters are registered up front so the snapshot is complete
/// even for runs that never touch a path.
struct CycleMeters {
  obs::MetricsRegistry registry;
  obs::Counter* iterations = registry.counter("iterations");
  obs::Counter* risk_evaluations = registry.counter("risk_evaluations");
  obs::Counter* anonymization_steps = registry.counter("anonymization_steps");
  obs::Counter* nulls_injected = registry.counter("nulls_injected");
  obs::Counter* cells_recoded = registry.counter("cells_recoded");
  obs::Counter* initial_risky = registry.counter("initial_risky");
  obs::Counter* unresolved = registry.counter("unresolved");
  obs::Counter* group_rebuilds = registry.counter("group_rebuilds");
  obs::Counter* group_updates = registry.counter("group_updates");
  obs::Counter* log_dropped = registry.counter("log_dropped");
  obs::Histogram* risk_eval_seconds = registry.histogram("risk_eval_seconds");
  obs::Histogram* anonymize_seconds = registry.histogram("anonymize_seconds");
  obs::Histogram* index_update_seconds = registry.histogram("index_update_seconds");
  obs::Gauge* total_seconds = registry.gauge("total_seconds");
  obs::Gauge* information_loss = registry.gauge("information_loss");
};

/// Appends a log line under the max_log_steps cap; past the cap, appends the
/// truncation sentinel once and counts the dropped entries.
void AppendLog(const CycleOptions& options, CycleMeters* meters, CycleStats* stats,
               std::string line) {
  if (stats->log.size() < options.max_log_steps) {
    stats->log.push_back(std::move(line));
    return;
  }
  if (stats->log.size() == options.max_log_steps) {
    stats->log.push_back(kLogTruncatedSentinel);
  }
  meters->log_dropped->Add(1);
}

}  // namespace

Result<CycleStats> AnonymizationCycle::Run(MicrodataTable* table) {
  obs::Span run_span("cycle.run");
  const auto t_start = std::chrono::steady_clock::now();
  CycleMeters meters;
  CycleStats stats;
  VADASA_RETURN_NOT_OK(table->Validate());
  const std::vector<size_t> qis = options_.risk.ResolveQiColumns(*table);
  if (qis.empty()) {
    return Status::FailedPrecondition("microdata DB " + table->name() +
                                      " has no quasi-identifier columns");
  }
  std::vector<bool> unresolvable(table->num_rows(), false);

  // One cache for the whole run: the group index inside is built on first
  // use and then maintained incrementally from the changed-row sets the
  // anonymizer reports — iterations >= 2 never recompute group stats from
  // scratch (stats.group_rebuilds stays at 1).
  RiskEvalCache cache;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    if (options_.cancel != nullptr) {
      VADASA_RETURN_NOT_OK(options_.cancel->Check());
    }
    obs::Span iteration_span("cycle.iteration");
    meters.iterations->Add(1);
    // --- Risk evaluation (the component Fig. 7e singles out). ---
    const auto t_risk = std::chrono::steady_clock::now();
    std::vector<double> risks;
    std::vector<bool> cluster_elevated;
    {
      obs::Span risk_span("cycle.risk_eval");
      VADASA_ASSIGN_OR_RETURN(risks,
                              risk_->ComputeRisks(*table, options_.risk, &cache));
      // Rows whose risk was raised by the business-knowledge transform carry
      // non-local risk: the group-touch skip below must not apply to them.
      cluster_elevated.assign(risks.size(), false);
      if (options_.risk_transform) {
        const std::vector<double> base_risks = risks;
        options_.risk_transform(*table, &risks);
        for (size_t r = 0; r < risks.size(); ++r) {
          cluster_elevated[r] = risks[r] > base_risks[r] + 1e-12;
        }
      }
    }
    meters.risk_evaluations->Add(1);
    meters.risk_eval_seconds->Record(SecondsSince(t_risk));

    std::vector<size_t> risky;
    for (size_t r = 0; r < risks.size(); ++r) {
      if (risks[r] > options_.threshold && !unresolvable[r]) risky.push_back(r);
    }
    if (iter == 0) {
      size_t initial = 0;
      for (size_t r = 0; r < risks.size(); ++r) {
        if (risks[r] > options_.threshold) ++initial;
      }
      meters.initial_risky->Add(initial);
    }
    if (risky.empty()) break;

    const auto t_anon = std::chrono::steady_clock::now();
    obs::Span anonymize_span("cycle.anonymize");
    const std::vector<size_t> order =
        OrderRiskyTuples(*table, risky, risks, options_.tuple_order);
    // What-if oracle for the QI-choice heuristic: the cache's incremental
    // index. Updates are batched to the end of the iteration, so mid-iteration
    // queries see the iteration-start state — exactly the snapshot the
    // per-iteration PatternUniverse used to provide.
    const PatternOracle& universe = cache.Index(*table, qis, options_.risk.semantics);
    // Group-touch guard state: QI patterns anonymized earlier this iteration.
    // Under the columnar plane the guard compares packed dictionary codes;
    // under the row plane it compares Values. Same maybe-match relation.
    const std::shared_ptr<const ColumnarView> guard_view = cache.SharedView(*table);
    std::vector<std::vector<Value>> touched_patterns;
    std::vector<std::vector<uint32_t>> touched_codes;
    std::vector<uint32_t> iteration_changed;
    bool progressed = false;

    for (const size_t r : order) {
      if (!options_.single_step && !cluster_elevated[r] &&
          options_.risk.semantics == NullSemantics::kMaybeMatch) {
        const bool touched =
            guard_view != nullptr
                ? MaybeMatchesAnyCodes(QiCodePattern(*guard_view, *table, qis, r),
                                       touched_codes)
                : MaybeMatchesAny(QiPattern(*table, qis, r), touched_patterns);
        if (touched) {
          // An earlier step this iteration may already have widened this
          // tuple's group; re-check at the next risk evaluation.
          continue;
        }
      }
      auto col = ChooseQiColumn(*table, qis, r, options_.qi_choice, *anonymizer_,
                                universe);
      if (!col.ok()) {
        if (col.status().code() == StatusCode::kNotFound) {
          unresolvable[r] = true;
          if (options_.log_steps) {
            AppendLog(options_, &meters, &stats,
                      "row " + std::to_string(r) +
                          ": risky but no anonymization applicable; giving up");
          }
          continue;
        }
        return col.status();
      }
      // Explain against the pre-step state: why was this tuple risky? The
      // cache hands Explain the stats ComputeRisks already produced instead
      // of a fresh O(n) grouping pass per logged row.
      std::string why;
      if (options_.log_steps) {
        why = risk_->Explain(*table, options_.risk, r, risks[r], &cache);
      }
      VADASA_ASSIGN_OR_RETURN(const AnonymizationStep step,
                              anonymizer_->Apply(table, r, *col));
      meters.anonymization_steps->Add(1);
      meters.nulls_injected->Add(step.nulls_injected);
      if (step.nulls_injected == 0) meters.cells_recoded->Add(step.affected_rows);
      progressed = true;
      iteration_changed.insert(iteration_changed.end(), step.changed_rows.begin(),
                               step.changed_rows.end());
      if (options_.log_steps) {
        AppendLog(options_, &meters, &stats, step.ToString(*table) + "  [" + why + "]");
      }
      if (options_.single_step) break;  // Paper-literal: back to risk eval.
      if (step.affected_rows > 1) break;  // Global recoding: groups shifted broadly.
      if (guard_view != nullptr) {
        touched_codes.push_back(QiCodePattern(*guard_view, *table, qis, r));
      } else {
        touched_patterns.push_back(QiPattern(*table, qis, r));
      }
    }
    meters.anonymize_seconds->Record(SecondsSince(t_anon));
    if (!iteration_changed.empty()) {
      obs::Span update_span("cycle.index_update");
      const auto t_update = std::chrono::steady_clock::now();
      cache.NotifyRowsChanged(*table, iteration_changed);
      meters.index_update_seconds->Record(SecondsSince(t_update));
    }
    if (!progressed) break;  // Only unresolvable risky tuples remain.
  }

  size_t unresolved = 0;
  for (const bool u : unresolvable) {
    if (u) ++unresolved;
  }
  meters.unresolved->Add(unresolved);
  meters.group_rebuilds->Add(cache.full_builds());
  meters.group_updates->Add(cache.incremental_updates());
  meters.information_loss->Set(PaperInformationLoss(
      meters.nulls_injected->value(), meters.initial_risky->value(), qis.size()));
  meters.total_seconds->Set(SecondsSince(t_start));

  // CycleStats is a view over the meter registry — one snapshot, one truth.
  stats.iterations = meters.iterations->value();
  stats.risk_evaluations = meters.risk_evaluations->value();
  stats.anonymization_steps = meters.anonymization_steps->value();
  stats.nulls_injected = meters.nulls_injected->value();
  stats.cells_recoded = meters.cells_recoded->value();
  stats.initial_risky = meters.initial_risky->value();
  stats.unresolved = meters.unresolved->value();
  stats.group_rebuilds = meters.group_rebuilds->value();
  stats.group_updates = meters.group_updates->value();
  stats.log_dropped = meters.log_dropped->value();
  stats.risk_eval_seconds = meters.risk_eval_seconds->sum();
  stats.total_seconds = meters.total_seconds->value();
  stats.information_loss = meters.information_loss->value();

  // Fold the run into the process-wide registry for the exporters.
  meters.registry.MergeInto(&obs::MetricsRegistry::Global(), "cycle.");
  return stats;
}

}  // namespace vadasa::core
