#include "core/cycle.h"

#include <chrono>

#include "core/infoloss.h"

namespace vadasa::core {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::vector<Value> QiPattern(const MicrodataTable& table,
                             const std::vector<size_t>& qis, size_t row) {
  std::vector<Value> p;
  p.reserve(qis.size());
  for (const size_t c : qis) p.push_back(table.cell(row, c));
  return p;
}

bool MaybeMatchesAny(const std::vector<Value>& pattern,
                     const std::vector<std::vector<Value>>& others) {
  for (const auto& o : others) {
    bool match = true;
    for (size_t i = 0; i < pattern.size() && match; ++i) {
      match = pattern[i].MaybeEquals(o[i]);
    }
    if (match) return true;
  }
  return false;
}

}  // namespace

Result<CycleStats> AnonymizationCycle::Run(MicrodataTable* table) {
  const auto t_start = std::chrono::steady_clock::now();
  CycleStats stats;
  VADASA_RETURN_NOT_OK(table->Validate());
  const std::vector<size_t> qis = options_.risk.ResolveQiColumns(*table);
  if (qis.empty()) {
    return Status::FailedPrecondition("microdata DB " + table->name() +
                                      " has no quasi-identifier columns");
  }
  std::vector<bool> unresolvable(table->num_rows(), false);

  // One cache for the whole run: the group index inside is built on first
  // use and then maintained incrementally from the changed-row sets the
  // anonymizer reports — iterations >= 2 never recompute group stats from
  // scratch (stats.group_rebuilds stays at 1).
  RiskEvalCache cache;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    ++stats.iterations;
    // --- Risk evaluation (the component Fig. 7e singles out). ---
    const auto t_risk = std::chrono::steady_clock::now();
    VADASA_ASSIGN_OR_RETURN(std::vector<double> risks,
                            risk_->ComputeRisks(*table, options_.risk, &cache));
    // Rows whose risk was raised by the business-knowledge transform carry
    // non-local risk: the group-touch skip below must not apply to them.
    std::vector<bool> cluster_elevated(risks.size(), false);
    if (options_.risk_transform) {
      const std::vector<double> base_risks = risks;
      options_.risk_transform(*table, &risks);
      for (size_t r = 0; r < risks.size(); ++r) {
        cluster_elevated[r] = risks[r] > base_risks[r] + 1e-12;
      }
    }
    ++stats.risk_evaluations;
    stats.risk_eval_seconds += SecondsSince(t_risk);

    std::vector<size_t> risky;
    for (size_t r = 0; r < risks.size(); ++r) {
      if (risks[r] > options_.threshold && !unresolvable[r]) risky.push_back(r);
    }
    if (iter == 0) {
      for (size_t r = 0; r < risks.size(); ++r) {
        if (risks[r] > options_.threshold) ++stats.initial_risky;
      }
    }
    if (risky.empty()) break;

    const std::vector<size_t> order =
        OrderRiskyTuples(*table, risky, risks, options_.tuple_order);
    // What-if oracle for the QI-choice heuristic: the cache's incremental
    // index. Updates are batched to the end of the iteration, so mid-iteration
    // queries see the iteration-start state — exactly the snapshot the
    // per-iteration PatternUniverse used to provide.
    const PatternOracle& universe = cache.Index(*table, qis, options_.risk.semantics);
    std::vector<std::vector<Value>> touched_patterns;
    std::vector<uint32_t> iteration_changed;
    bool progressed = false;

    for (const size_t r : order) {
      if (!options_.single_step && !cluster_elevated[r] &&
          options_.risk.semantics == NullSemantics::kMaybeMatch &&
          MaybeMatchesAny(QiPattern(*table, qis, r), touched_patterns)) {
        // An earlier step this iteration may already have widened this
        // tuple's group; re-check at the next risk evaluation.
        continue;
      }
      auto col = ChooseQiColumn(*table, qis, r, options_.qi_choice, *anonymizer_,
                                universe);
      if (!col.ok()) {
        if (col.status().code() == StatusCode::kNotFound) {
          unresolvable[r] = true;
          if (options_.log_steps) {
            stats.log.push_back("row " + std::to_string(r) +
                                ": risky but no anonymization applicable; giving up");
          }
          continue;
        }
        return col.status();
      }
      // Explain against the pre-step state: why was this tuple risky? The
      // cache hands Explain the stats ComputeRisks already produced instead
      // of a fresh O(n) grouping pass per logged row.
      std::string why;
      if (options_.log_steps) {
        why = risk_->Explain(*table, options_.risk, r, risks[r], &cache);
      }
      VADASA_ASSIGN_OR_RETURN(const AnonymizationStep step,
                              anonymizer_->Apply(table, r, *col));
      ++stats.anonymization_steps;
      stats.nulls_injected += step.nulls_injected;
      if (step.nulls_injected == 0) stats.cells_recoded += step.affected_rows;
      progressed = true;
      iteration_changed.insert(iteration_changed.end(), step.changed_rows.begin(),
                               step.changed_rows.end());
      if (options_.log_steps) {
        stats.log.push_back(step.ToString(*table) + "  [" + why + "]");
      }
      if (options_.single_step) break;  // Paper-literal: back to risk eval.
      if (step.affected_rows > 1) break;  // Global recoding: groups shifted broadly.
      touched_patterns.push_back(QiPattern(*table, qis, r));
    }
    if (!iteration_changed.empty()) {
      cache.NotifyRowsChanged(*table, iteration_changed);
    }
    if (!progressed) break;  // Only unresolvable risky tuples remain.
  }

  for (const bool u : unresolvable) {
    if (u) ++stats.unresolved;
  }
  stats.group_rebuilds = cache.full_builds();
  stats.group_updates = cache.incremental_updates();
  stats.information_loss =
      PaperInformationLoss(stats.nulls_injected, stats.initial_risky, qis.size());
  stats.total_seconds = SecondsSince(t_start);
  return stats;
}

}  // namespace vadasa::core
