#ifndef VADASA_CORE_HIERARCHY_H_
#define VADASA_CORE_HIERARCHY_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace vadasa::core {

/// The domain-knowledge component of the Vada-SA KB used by global recoding
/// (Algorithm 8): attribute types, a type hierarchy and value roll-ups.
///
///   Att(I&G, Area).  TypeOf(Area, City).  SubTypeOf(City, Region).
///   InstOf(Milano, City).  InstOf(North, Region).  IsA(Milano, North).
///
/// Generalizing an attribute value climbs one level: the value's IsA parent,
/// checked to be an instance of the value type's direct supertype. Values may
/// belong to several types (e.g. the band "0-30" in two revenue attributes);
/// roll-ups can be scoped to a type to keep such attributes independent.
class Hierarchy {
 public:
  /// Declares that attribute `attribute` draws its values from `type`.
  void SetAttributeType(const std::string& attribute, const std::string& type);

  /// Declares `type` ⊑ `supertype` (one level).
  void AddSubType(const std::string& type, const std::string& supertype);

  /// Declares that `value` is an instance of `type` (a value may be an
  /// instance of several types).
  void AddInstance(const Value& value, const std::string& type);

  /// Declares the roll-up `child` IsA `parent`, valid whatever type the
  /// child is read at.
  void AddIsA(const Value& child, const Value& parent);

  /// Declares the roll-up `child` IsA `parent` only when the child is read
  /// as an instance of `child_type`. Scoped roll-ups win over global ones.
  void AddScopedIsA(const std::string& child_type, const Value& child,
                    const Value& parent);

  /// The type of an attribute ("" if undeclared).
  std::string AttributeType(const std::string& attribute) const;

  /// The direct supertype of a type ("" if top).
  std::string SuperType(const std::string& type) const;

  /// True if `value` was declared an instance of `type`.
  bool IsInstanceOf(const Value& value, const std::string& type) const;

  /// Rolls the value of `attribute` one level up. Fails (NotFound) when no
  /// parent is known, the attribute has no type, or the parent is not an
  /// instance of the supertype — mirroring the join in Algorithm 8.
  Result<Value> Generalize(const std::string& attribute, const Value& value) const;

  /// True if Generalize would succeed.
  bool CanGeneralize(const std::string& attribute, const Value& value) const;

  /// Number of roll-ups still applicable to `value` for `attribute` (0 when
  /// at the top). Used by information-loss accounting.
  int GeneralizationHeight(const std::string& attribute, const Value& value) const;

  /// Declares an interval hierarchy for a banded attribute: the ordered band
  /// labels are merged `fan_in` at a time into coarser bands named
  /// "b1|b2|..." (joined labels), level by level, up to a single top. E.g.
  /// bands {0-30, 30-60, 60-90, 90+} with fan_in 2 produce 0-30|30-60 and
  /// 60-90|90+, then the single top band. This is how SDC tools generalize
  /// numeric range attributes; roll-ups are type-scoped, so two attributes
  /// sharing band labels stay independent.
  void AddIntervalHierarchy(const std::string& attribute,
                            const std::vector<std::string>& ordered_bands,
                            size_t fan_in = 2);

  /// A ready-made Italian geography KB: cities → macro-areas (North, Center,
  /// South) → "Italy"; used by the Fig. 5 example and tests.
  static Hierarchy ItalianGeography();

 private:
  /// Resolves which type `value` should be read at for `attribute`: the
  /// first type in the attribute's type chain that `value` is an instance
  /// of; falls back to the attribute's base type.
  std::string ValueTypeFor(const std::string& attribute, const Value& value) const;

  std::unordered_map<std::string, std::string> attribute_type_;
  std::unordered_map<std::string, std::string> supertype_;
  std::unordered_map<Value, std::set<std::string>, ValueHash> instance_types_;
  std::unordered_map<Value, Value, ValueHash> isa_;
  std::map<std::pair<std::string, std::string>, Value> scoped_isa_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_HIERARCHY_H_
