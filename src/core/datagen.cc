#include "core/datagen.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace vadasa::core {

std::string DistributionKindToString(DistributionKind d) {
  switch (d) {
    case DistributionKind::kRealWorld:
      return "W";
    case DistributionKind::kUnbalanced:
      return "U";
    case DistributionKind::kVeryUnbalanced:
      return "V";
  }
  return "?";
}

std::vector<DatasetSpec> Figure6Corpus() {
  using D = DistributionKind;
  return {
      {"R6A4U", 4, 6000, D::kUnbalanced, true},
      {"R12A4U", 4, 12000, D::kUnbalanced, true},
      {"R25A4W", 4, 25000, D::kRealWorld, false},
      {"R25A4U", 4, 25000, D::kUnbalanced, false},
      {"R25A4V", 4, 25000, D::kVeryUnbalanced, false},
      {"R50A4W", 4, 50000, D::kRealWorld, true},
      {"R50A4U", 4, 50000, D::kUnbalanced, true},
      {"R50A5W", 5, 50000, D::kRealWorld, true},
      {"R50A6W", 6, 50000, D::kRealWorld, true},
      {"R50A8W", 8, 50000, D::kRealWorld, true},
      {"R50A9W", 9, 50000, D::kRealWorld, true},
      {"R100A4U", 4, 100000, D::kUnbalanced, true},
  };
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : Figure6Corpus()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no Fig. 6 dataset named " + name);
}

namespace {

/// Candidate quasi-identifier attributes; the first `num_qi` are used.
struct QiDomain {
  const char* name;
  const char* description;
  std::vector<const char*> values;
};

const std::vector<QiDomain>& QiDomains() {
  static const std::vector<QiDomain>* kDomains = new std::vector<QiDomain>{
      {"Area", "Geographic Area", {"North", "Center", "South"}},
      {"Sector",
       "Product Sector",
       {"Commerce", "Public Service", "Construction", "Textiles", "Other",
        "Financial", "Agriculture", "Energy"}},
      {"Employees", "Num. of employees", {"50-200", "201-1000", "1000+"}},
      {"Residential Rev.", "Rev. from internal market", {"0-30", "30-60", "60-90", "90+"}},
      {"Export Rev.", "Rev. from external market", {"0-30", "30-60", "60-90", "90+"}},
      {"Export to DE", "Rev. from DE market", {"0-30", "30-60", "60-90", "90+"}},
      {"Legal Form", "Company legal form", {"SpA", "Srl", "Coop", "Partnership", "Other"}},
      {"Age", "Years since foundation", {"0-5", "6-15", "16-40", "40+"}},
      {"Listed", "Stock-exchange listing", {"Unlisted", "Listed", "Delisted"}},
  };
  return *kDomains;
}

/// Per-category sampling weights for a domain of `n` values under a
/// distribution shape. Heavier tails create more selective (rare)
/// combinations — the paper's "risky tuples".
std::vector<double> CategoryWeights(size_t n, DistributionKind dist) {
  std::vector<double> w(n);
  double s = 0.0;
  switch (dist) {
    case DistributionKind::kRealWorld:
      s = 0.8;  // Mild skew.
      break;
    case DistributionKind::kUnbalanced:
      s = 1.8;
      break;
    case DistributionKind::kVeryUnbalanced:
      s = 2.4;
      break;
  }
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return w;
}

/// The structured rarity model. Real survey data owes its risky tuples to
/// three patterns, which the three Fig. 6 distribution shapes dose
/// differently (counts are per 25k tuples and scale with the dataset size):
///
///  - *isolated single-niche outliers*: one rare value in one attribute —
///    a single suppression fixes them (1 null each);
///  - *isolated double-niche outliers*: rare values in two attributes —
///    two suppressions needed (the >25% information loss of R25A4V at k=2);
///  - *outlier families*: 2-4 respondents sharing a common profile except
///    for distinct niche values in one attribute — one suppression covers
///    the whole family at k=2, and progressively more members need nulls as
///    k grows (the ~linear null growth of Fig. 7a and the amortization that
///    makes V's information loss *drop* at stricter k in Fig. 7b).
struct OutlierPlan {
  size_t isolated_single = 0;
  size_t isolated_double = 0;
  size_t families = 0;
  /// Niche clusters: a shared base profile with 3 distinct niche values in
  /// one column, each repeated 3 times (9 rows). Safe at k<=3; at stricter k
  /// a couple of wildcards cover the whole cluster — the amortization that
  /// keeps the W information loss flat in Fig. 7b.
  size_t clusters = 0;
};

OutlierPlan PlanFor(DistributionKind dist, size_t num_tuples) {
  OutlierPlan plan;
  switch (dist) {
    case DistributionKind::kRealWorld:
      plan = {4, 0, 3, 2};
      break;
    case DistributionKind::kUnbalanced:
      plan = {60, 10, 25, 6};
      break;
    case DistributionKind::kVeryUnbalanced:
      plan = {20, 150, 10, 4};
      break;
  }
  const double scale = static_cast<double>(num_tuples) / 25000.0;
  plan.isolated_single = std::max<size_t>(
      1, static_cast<size_t>(std::llround(plan.isolated_single * scale)));
  plan.isolated_double =
      static_cast<size_t>(std::llround(plan.isolated_double * scale));
  plan.families =
      static_cast<size_t>(std::llround(std::max(1.0, plan.families * scale)));
  plan.clusters = static_cast<size_t>(std::llround(plan.clusters * scale));
  return plan;
}

}  // namespace

MicrodataTable GenerateInflationGrowth(const std::string& name, size_t num_tuples,
                                       int num_qi, DistributionKind distribution,
                                       uint64_t seed) {
  const auto& domains = QiDomains();
  const int q = std::min<int>(num_qi, static_cast<int>(domains.size()));

  std::vector<Attribute> attrs;
  attrs.push_back({"Id", "Company Identifier", AttributeCategory::kIdentifier});
  for (int i = 0; i < q; ++i) {
    attrs.push_back(
        {domains[i].name, domains[i].description, AttributeCategory::kQuasiIdentifier});
  }
  attrs.push_back({"Growth", "Rev. growth last 6 mths", AttributeCategory::kNonIdentifying});
  attrs.push_back({"Weight", "Sampling Weight", AttributeCategory::kWeight});
  MicrodataTable table(name, std::move(attrs));

  Rng rng(seed);
  // Per-attribute category weights; the category order is shuffled per
  // attribute so the skews of different attributes do not align on the same
  // index (which would make all tails co-occur).
  std::vector<std::vector<double>> weights(q);
  std::vector<std::vector<size_t>> order(q);
  double combo_space = 1.0;
  for (int i = 0; i < q; ++i) {
    weights[i] = CategoryWeights(domains[i].values.size(), distribution);
    order[i].resize(domains[i].values.size());
    for (size_t j = 0; j < order[i].size(); ++j) order[i][j] = j;
    rng.Shuffle(&order[i]);
    combo_space *= static_cast<double>(domains[i].values.size());
  }
  // Population scale: the identity oracle is ~40x the sample, so a
  // combination carried by f sample tuples has expected population mass 40f.
  const double population_scale = 40.0 * static_cast<double>(num_tuples);

  // Attributes beyond the core four are functionally derived from them:
  // survey attributes correlate strongly, and this keeps the set of risky
  // tuples stable as the attribute count grows — the property Fig. 7f
  // depends on ("individual risk and k-anonymity are only marginally
  // affected by the increased number of quasi-identifiers").
  auto derived_pick = [&](int attr, const std::vector<Value>& core) -> size_t {
    uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(attr) * 0x9e3779b9ULL;
    for (const Value& v : core) {
      for (const char c : v.ToString()) {
        h = (h ^ static_cast<uint64_t>(c)) * 0x100000001b3ULL;
      }
    }
    return h % domains[attr].values.size();
  };

  for (size_t t = 0; t < num_tuples; ++t) {
    std::vector<Value> row;
    row.reserve(table.num_columns());
    row.push_back(Value::Int(rng.NextInt(100000, 999999)));
    double combo_prob = 1.0;
    std::vector<Value> core;
    for (int i = 0; i < q; ++i) {
      size_t pick;
      if (i < 4) {
        pick = rng.NextCategorical(weights[i]);
        double total = 0.0;
        for (const double w : weights[i]) total += w;
        combo_prob *= weights[i][pick] / total;
        pick = order[i][pick];
      } else {
        pick = derived_pick(i, core);
      }
      Value v = Value::String(domains[i].values[pick]);
      if (static_cast<int>(core.size()) < std::min(q, 4)) core.push_back(v);
      row.push_back(std::move(v));
    }
    row.push_back(Value::Int(rng.NextInt(-30, 300)));  // Growth, non-identifying.
    // Sampling weight: expected number of population entities with this
    // combination, with ±20% multiplicative noise, at least 1.
    const double noise = 0.8 + 0.4 * rng.NextDouble();
    const double w = std::max(1.0, std::round(population_scale * combo_prob * noise));
    row.push_back(Value::Int(static_cast<int64_t>(w)));
    Status st = table.AddRow(std::move(row));
    (void)st;
  }

  // Plant the structured outliers over randomly chosen rows.
  const OutlierPlan plan = PlanFor(distribution, num_tuples);
  std::vector<size_t> slots(num_tuples);
  for (size_t i = 0; i < num_tuples; ++i) slots[i] = i;
  rng.Shuffle(&slots);
  size_t next_slot = 0;
  size_t niche_counter = 0;
  auto niche_value = [&](int attr) {
    return Value::String(std::string(domains[attr].name) + "-niche-" +
                         std::to_string(niche_counter++));
  };
  auto common_value = [&](int attr) {
    const size_t pick = rng.NextCategorical(weights[attr]);
    return Value::String(domains[attr].values[order[attr][pick]]);
  };
  // Outlier profiles: draw the core four, derive the rest (as above).
  auto common_profile = [&]() {
    std::vector<Value> values;
    for (int i = 0; i < std::min(q, 4); ++i) values.push_back(common_value(i));
    for (int i = 4; i < q; ++i) {
      values.push_back(Value::String(domains[i].values[derived_pick(i, values)]));
    }
    return values;
  };
  auto plant = [&](const std::vector<Value>& qi_values) {
    if (next_slot >= slots.size()) return;
    const size_t r = slots[next_slot++];
    for (int i = 0; i < q; ++i) table.set_cell(r, 1 + i, qi_values[i]);
    // Outliers are rare by construction: minimal population mass.
    table.set_cell(r, table.num_columns() - 1, Value::Int(rng.NextInt(1, 3)));
  };
  for (size_t o = 0; o < plan.isolated_single + plan.isolated_double; ++o) {
    std::vector<Value> values = common_profile();
    const int first = static_cast<int>(rng.NextBelow(q));
    values[first] = niche_value(first);
    if (o >= plan.isolated_single && q > 1) {
      const int second = (first + 1 + static_cast<int>(rng.NextBelow(q - 1))) % q;
      values[second] = niche_value(second);
    }
    plant(values);
  }
  for (size_t f = 0; f < plan.families; ++f) {
    std::vector<Value> base = common_profile();
    const int col = static_cast<int>(rng.NextBelow(q));
    const size_t members = 2 + rng.NextBelow(3);  // 2-4 respondents.
    for (size_t m = 0; m < members; ++m) {
      std::vector<Value> values = base;
      values[col] = niche_value(col);
      plant(values);
    }
  }
  for (size_t c = 0; c < plan.clusters; ++c) {
    std::vector<Value> base = common_profile();
    const int col = static_cast<int>(rng.NextBelow(q));
    for (int v = 0; v < 3; ++v) {
      const Value niche = niche_value(col);
      for (int repeat = 0; repeat < 3; ++repeat) {
        std::vector<Value> values = base;
        values[col] = niche;
        plant(values);
      }
    }
  }
  return table;
}

MicrodataTable GenerateDataset(const DatasetSpec& spec) {
  // Seed derived from the dataset name: stable across runs and machines.
  uint64_t seed = 0xcbf29ce484222325ULL;
  for (const char c : spec.name) seed = (seed ^ static_cast<uint64_t>(c)) * 0x100000001b3ULL;
  return GenerateInflationGrowth(spec.name, spec.num_tuples, spec.num_qi,
                                 spec.distribution, seed);
}

MicrodataTable Figure1Microdata() {
  std::vector<Attribute> attrs = {
      {"Id", "Company Identifier", AttributeCategory::kIdentifier},
      {"Area", "Geographic Area", AttributeCategory::kQuasiIdentifier},
      {"Sector", "Product Sector", AttributeCategory::kQuasiIdentifier},
      {"Employees", "Num. of employees", AttributeCategory::kQuasiIdentifier},
      {"Residential Rev.", "Rev. from internal market", AttributeCategory::kQuasiIdentifier},
      {"Export Rev.", "Rev. from external market", AttributeCategory::kQuasiIdentifier},
      {"Export to DE", "Rev. from DE market", AttributeCategory::kNonIdentifying},
      {"Growth", "Rev. growth last 6 mths", AttributeCategory::kNonIdentifying},
      {"Weight", "Sampling Weight", AttributeCategory::kWeight},
  };
  MicrodataTable table("I&G", std::move(attrs));
  struct RowSpec {
    int id;
    const char* area;
    const char* sector;
    const char* employees;
    const char* res;
    const char* exp;
    const char* de;
    int growth;
    int weight;
  };
  const RowSpec kRows[] = {
      {612276, "North", "Public Service", "50-200", "0-30", "0-30", "30-60", 2, 230},
      {737536, "South", "Commerce", "201-1000", "0-30", "90+", "0-30", -1, 190},
      {971906, "Center", "Commerce", "1000+", "0-30", "30-60", "0-30", 4, 70},
      {589681, "North", "Textiles", "1000+", "90+", "0-30", "0-30", 30, 60},
      {419410, "North", "Construction", "1000+", "90+", "0-30", "0-30", 300, 50},
      {972915, "North", "Other", "1000+", "0-30", "0-30", "30-60", 50, 70},
      {501118, "North", "Other", "201-1000", "60-90", "90+", "90+", -20, 300},
      {815363, "North", "Textiles", "201-1000", "60-90", "30-60", "90+", 2, 230},
      {490065, "South", "Public Service", "50-200", "0-30", "0-30", "0-30", 12, 123},
      {415487, "South", "Commerce", "1000+", "0-30", "0-30", "90+", 3, 145},
      {399087, "South", "Commerce", "50-200", "30-60", "0-30", "30-60", 2, 70},
      {170034, "Center", "Commerce", "1000+", "60-90", "0-30", "0-30", 45, 90},
      {724905, "Center", "Construction", "201-1000", "0-30", "30-60", "0-30", 2, 200},
      {554475, "Center", "Other", "50-200", "0-30", "90+", "0-30", 0, 104},
      {946251, "Center", "Public Service", "201-1000", "30-60", "90+", "90+", 150, 30},
      {581077, "North", "Textiles", "50-200", "0-30", "60-90", "30-60", -20, 160},
      {765562, "South", "Textiles", "50-200", "0-30", "60-90", "0-30", -7, 200},
      {154840, "Center", "Commerce", "201-1000", "0-30", "60-90", "0-30", 4, 220},
      {600837, "Center", "Construction", "50-200", "0-30", "60-90", "0-30", 20, 190},
      {220712, "Center", "Financial", "1000+", "30-60", "60-90", "30-60", -30, 90},
  };
  for (const RowSpec& r : kRows) {
    Status st = table.AddRow({Value::Int(r.id), Value::String(r.area),
                              Value::String(r.sector), Value::String(r.employees),
                              Value::String(r.res), Value::String(r.exp),
                              Value::String(r.de), Value::Int(r.growth),
                              Value::Int(r.weight)});
    (void)st;
  }
  return table;
}

MicrodataTable Figure5Microdata() {
  std::vector<Attribute> attrs = {
      {"Id", "Company Identifier", AttributeCategory::kIdentifier},
      {"Area", "City", AttributeCategory::kQuasiIdentifier},
      {"Sector", "Product Sector", AttributeCategory::kQuasiIdentifier},
      {"Employees", "Num. of employees", AttributeCategory::kQuasiIdentifier},
      {"Residential Revenue", "Rev. from internal market",
       AttributeCategory::kQuasiIdentifier},
  };
  MicrodataTable table("Fig5", std::move(attrs));
  struct RowSpec {
    const char* id;
    const char* area;
    const char* sector;
    const char* employees;
    const char* res;
  };
  const RowSpec kRows[] = {
      {"099876", "Roma", "Textiles", "1000+", "0-30"},
      {"765389", "Roma", "Commerce", "1000+", "0-30"},
      {"231654", "Roma", "Commerce", "1000+", "0-30"},
      {"097302", "Roma", "Financial", "1000+", "0-30"},
      {"120967", "Roma", "Financial", "1000+", "0-30"},
      {"232498", "Milano", "Construction", "0-200", "60-90"},
      {"340901", "Torino", "Construction", "0-200", "60-90"},
  };
  for (const RowSpec& r : kRows) {
    Status st = table.AddRow({Value::String(r.id), Value::String(r.area),
                              Value::String(r.sector), Value::String(r.employees),
                              Value::String(r.res)});
    (void)st;
  }
  return table;
}

}  // namespace vadasa::core
