#ifndef VADASA_CORE_CATEGORIZE_H_
#define VADASA_CORE_CATEGORIZE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/similarity.h"
#include "core/metadata.h"
#include "core/microdata.h"

namespace vadasa::core {

/// One ExpBase(attribute-name, category) fact: experts' knowledge that an
/// attribute with this name (or a similar one) has this category.
struct ExperienceEntry {
  std::string attribute;
  AttributeCategory category;
};

/// Outcome of categorizing one attribute.
struct CategorizationDecision {
  std::string attribute;
  AttributeCategory category = AttributeCategory::kNonIdentifying;
  /// The experience-base entry that drove the decision ("" when defaulted).
  std::string matched_entry;
  double similarity = 0.0;
  bool defaulted = false;   ///< No match ≥ threshold; fell back to the default.
  bool consolidated = false;  ///< Fed back into the experience base (Rule 3).
};

/// A conflict surfaced by the EGD (Rule 4): two experience entries propose
/// different categories for the same attribute.
struct CategorizationConflict {
  std::string attribute;
  AttributeCategory first;
  AttributeCategory second;
  std::string first_entry;
  std::string second_entry;
};

/// Knobs of the categorizer.
struct CategorizerOptions {
  /// Minimum `∼` similarity to borrow a category.
  double similarity_threshold = 0.82;
  /// Category assigned when nothing matches (the ∃C of Rule 1 resolved
  /// conservatively: unknown attributes are treated as quasi-identifying).
  AttributeCategory default_category = AttributeCategory::kQuasiIdentifier;
  /// Pluggable ∼ function.
  SimilarityFn similarity = nullptr;
  /// Human-in-the-loop hook: whether to consolidate a decision into the
  /// experience base (Rule 3). Defaults to "always yes".
  std::function<bool(const CategorizationDecision&)> consolidate = nullptr;
};

/// Attribute categorization per Algorithm 1: a recursive application of
/// experience. An attribute sufficiently similar (`∼`) to an experience-base
/// entry borrows its category (Rule 2); accepted decisions are fed back into
/// the base (Rule 3), aiding later decisions; the EGD (Rule 4) guarantees one
/// category per attribute and surfaces conflicts for manual inspection.
class AttributeCategorizer {
 public:
  explicit AttributeCategorizer(CategorizerOptions options = {});

  /// Seeds the experience base.
  void AddExperience(const std::string& attribute, AttributeCategory category);
  const std::vector<ExperienceEntry>& experience() const { return experience_; }

  /// Conflicts detected so far (EGD violations in kCollect spirit).
  const std::vector<CategorizationConflict>& conflicts() const { return conflicts_; }

  /// Categorizes one attribute name.
  CategorizationDecision Categorize(const std::string& attribute);

  /// Categorizes all attributes of `table` in place and records Category
  /// facts into `dictionary` (may be nullptr).
  Result<std::vector<CategorizationDecision>> CategorizeTable(
      MicrodataTable* table, MetadataDictionary* dictionary);

  /// A default experience base covering common financial/statistical
  /// attribute names (ids, fiscal codes, geography, weights...).
  static AttributeCategorizer WithDefaultExperience(CategorizerOptions options = {});

 private:
  CategorizerOptions options_;
  std::vector<ExperienceEntry> experience_;
  std::vector<CategorizationConflict> conflicts_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_CATEGORIZE_H_
