#include "core/hierarchy.h"

#include <algorithm>

namespace vadasa::core {

void Hierarchy::SetAttributeType(const std::string& attribute, const std::string& type) {
  attribute_type_[attribute] = type;
}

void Hierarchy::AddSubType(const std::string& type, const std::string& supertype) {
  supertype_[type] = supertype;
}

void Hierarchy::AddInstance(const Value& value, const std::string& type) {
  instance_types_[value].insert(type);
}

void Hierarchy::AddIsA(const Value& child, const Value& parent) {
  isa_.insert_or_assign(child, parent);
}

void Hierarchy::AddScopedIsA(const std::string& child_type, const Value& child,
                             const Value& parent) {
  scoped_isa_.insert_or_assign({child_type, child.ToString()}, parent);
}

std::string Hierarchy::AttributeType(const std::string& attribute) const {
  auto it = attribute_type_.find(attribute);
  return it == attribute_type_.end() ? "" : it->second;
}

std::string Hierarchy::SuperType(const std::string& type) const {
  auto it = supertype_.find(type);
  return it == supertype_.end() ? "" : it->second;
}

bool Hierarchy::IsInstanceOf(const Value& value, const std::string& type) const {
  auto it = instance_types_.find(value);
  return it != instance_types_.end() && it->second.count(type) > 0;
}

std::string Hierarchy::ValueTypeFor(const std::string& attribute,
                                    const Value& value) const {
  // Walk the attribute's type chain and keep the highest level the value
  // belongs to: bands carried over unchanged across levels (odd merges) must
  // be read at their top-most membership so they keep climbing.
  const std::string base = AttributeType(attribute);
  std::string best = base;
  std::string type = base;
  int guard = 0;
  while (!type.empty() && guard++ < 32) {
    if (IsInstanceOf(value, type)) best = type;
    type = SuperType(type);
  }
  return best;
}

Result<Value> Hierarchy::Generalize(const std::string& attribute,
                                    const Value& value) const {
  const std::string base = AttributeType(attribute);
  if (base.empty()) {
    return Status::NotFound("attribute " + attribute + " has no declared type");
  }
  // The value may already sit above the attribute's base type; read it at
  // the level it actually belongs to.
  const std::string value_type = ValueTypeFor(attribute, value);
  const std::string super = SuperType(value_type);
  if (super.empty()) {
    return Status::NotFound("type " + value_type + " has no supertype");
  }
  const Value* parent = nullptr;
  auto scoped = scoped_isa_.find({value_type, value.ToString()});
  if (scoped != scoped_isa_.end()) {
    parent = &scoped->second;
  } else {
    auto global = isa_.find(value);
    if (global != isa_.end()) parent = &global->second;
  }
  if (parent == nullptr) {
    return Status::NotFound("no IsA parent known for " + value.ToString());
  }
  if (!IsInstanceOf(*parent, super)) {
    return Status::NotFound("IsA parent " + parent->ToString() +
                            " is not an instance of " + super);
  }
  return *parent;
}

bool Hierarchy::CanGeneralize(const std::string& attribute, const Value& value) const {
  return Generalize(attribute, value).ok();
}

int Hierarchy::GeneralizationHeight(const std::string& attribute,
                                    const Value& value) const {
  int height = 0;
  Value cur = value;
  while (height < 32) {
    auto up = Generalize(attribute, cur);
    if (!up.ok()) break;
    cur = std::move(up).value();
    ++height;
  }
  return height;
}

void Hierarchy::AddIntervalHierarchy(const std::string& attribute,
                                     const std::vector<std::string>& ordered_bands,
                                     size_t fan_in) {
  if (ordered_bands.empty()) return;
  if (fan_in < 2) fan_in = 2;
  const std::string base_type = attribute + "/L0";
  SetAttributeType(attribute, base_type);
  std::vector<std::string> level = ordered_bands;
  for (const std::string& band : level) {
    AddInstance(Value::String(band), base_type);
  }
  int depth = 0;
  while (level.size() > 1) {
    const std::string cur_type = attribute + "/L" + std::to_string(depth);
    const std::string up_type = attribute + "/L" + std::to_string(depth + 1);
    AddSubType(cur_type, up_type);
    std::vector<std::string> next;
    for (size_t i = 0; i < level.size(); i += fan_in) {
      const size_t end = std::min(level.size(), i + fan_in);
      if (end - i == 1) {
        // A lone band carries over to the next level unchanged (no self
        // roll-up); it merges with neighbours one level further up.
        AddInstance(Value::String(level[i]), up_type);
        next.push_back(level[i]);
        continue;
      }
      std::string merged;
      for (size_t j = i; j < end; ++j) {
        if (!merged.empty()) merged += "|";
        merged += level[j];
      }
      AddInstance(Value::String(merged), up_type);
      for (size_t j = i; j < end; ++j) {
        AddScopedIsA(cur_type, Value::String(level[j]), Value::String(merged));
      }
      next.push_back(std::move(merged));
    }
    level = std::move(next);
    ++depth;
  }
}

Hierarchy Hierarchy::ItalianGeography() {
  Hierarchy h;
  h.AddSubType("City", "Region");
  h.AddSubType("Region", "Country");
  const struct {
    const char* city;
    const char* region;
  } kCities[] = {
      {"Milano", "North"},  {"Torino", "North"},   {"Genova", "North"},
      {"Venezia", "North"}, {"Bologna", "North"},  {"Roma", "Center"},
      {"Firenze", "Center"}, {"Ancona", "Center"}, {"Perugia", "Center"},
      {"Napoli", "South"},  {"Bari", "South"},     {"Palermo", "South"},
      {"Catania", "South"}, {"Cagliari", "South"},
  };
  for (const auto& [city, region] : kCities) {
    h.AddInstance(Value::String(city), "City");
    h.AddIsA(Value::String(city), Value::String(region));
  }
  for (const char* region : {"North", "Center", "South"}) {
    h.AddInstance(Value::String(region), "Region");
    h.AddIsA(Value::String(region), Value::String("Italy"));
  }
  h.AddInstance(Value::String("Italy"), "Country");
  return h;
}

}  // namespace vadasa::core
