#include "core/report.h"

#include <sstream>

namespace vadasa::core {

std::string ReleaseAudit::ToText() const {
  std::ostringstream os;
  os << "=== Release audit: " << microdb << " ===\n";
  os << "tuples: " << tuples << ", quasi-identifiers: " << quasi_identifiers
     << ", risk measure: " << risk_measure << ", threshold T = " << threshold << "\n";
  os << "\n-- disclosure risk before --\n  " << risk_before.ToString() << "\n";
  os << "-- disclosure risk after  --\n  " << risk_after.ToString() << "\n";
  os << "\n-- anonymization cycle --\n";
  os << "  iterations: " << cycle.iterations
     << ", risk evaluations: " << cycle.risk_evaluations
     << ", steps: " << cycle.anonymization_steps << "\n";
  os << "  initially risky: " << cycle.initial_risky
     << ", nulls injected: " << cycle.nulls_injected
     << ", cells recoded: " << cycle.cells_recoded
     << ", unresolved: " << cycle.unresolved << "\n";
  os << "  information loss (paper metric): " << cycle.information_loss << "\n";
  if (!cycle.log.empty()) {
    os << "  decisions:\n";
    for (const std::string& line : cycle.log) {
      os << "    " << line << "\n";
    }
  }
  os << "\n-- statistical utility --\n" << utility.ToString();
  return os.str();
}

Result<ReleaseAudit> RunAuditedRelease(MicrodataTable* table,
                                       const RiskMeasure& measure,
                                       Anonymizer* anonymizer, CycleOptions options) {
  ReleaseAudit audit;
  audit.microdb = table->name();
  audit.tuples = table->num_rows();
  audit.quasi_identifiers = options.risk.ResolveQiColumns(*table).size();
  audit.risk_measure = measure.name();
  audit.threshold = options.threshold;

  const MicrodataTable original = *table;
  VADASA_ASSIGN_OR_RETURN(
      audit.risk_before,
      ComputeGlobalRisk(*table, measure, options.risk, options.threshold));

  options.log_steps = true;
  AnonymizationCycle cycle(&measure, anonymizer, options);
  VADASA_ASSIGN_OR_RETURN(audit.cycle, cycle.Run(table));

  // The cycle mutated the table, so any warm stats or columnar view handed
  // in for the before-evaluation are stale now (the row count still matches,
  // so the guards cannot catch it) — drop both before re-evaluating.
  options.risk.warm_stats.reset();
  options.risk.warm_view.reset();
  VADASA_ASSIGN_OR_RETURN(
      audit.risk_after,
      ComputeGlobalRisk(*table, measure, options.risk, options.threshold));
  VADASA_ASSIGN_OR_RETURN(audit.utility, MeasureUtility(original, *table));
  return audit;
}

}  // namespace vadasa::core
