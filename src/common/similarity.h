#ifndef VADASA_COMMON_SIMILARITY_H_
#define VADASA_COMMON_SIMILARITY_H_

#include <functional>
#include <string>
#include <string_view>

namespace vadasa {

/// String-similarity functions in [0,1], used by the attribute categorizer
/// (the pluggable `∼` relation of Algorithm 1) and by the record-linkage
/// attack's matching step.

/// Levenshtein edit distance (unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - dist/max(len); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler with standard prefix scale 0.1 (prefix capped at 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity over lower-cased whitespace/underscore tokens. Useful
/// for attribute names like "residential_revenue" vs "Residential Rev.".
double TokenJaccardSimilarity(std::string_view a, std::string_view b);

/// Case-insensitive composite similarity used as the default `∼` of the
/// attribute categorizer: max of Jaro–Winkler and token Jaccard on the
/// lower-cased inputs.
double AttributeNameSimilarity(std::string_view a, std::string_view b);

/// American Soundex code ("Robert" -> "R163"); empty input -> "0000".
/// Used by phonetic blocking in the record-linkage attack.
std::string Soundex(std::string_view s);

/// A pluggable similarity function type.
using SimilarityFn = std::function<double(std::string_view, std::string_view)>;

}  // namespace vadasa

#endif  // VADASA_COMMON_SIMILARITY_H_
