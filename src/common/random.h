#ifndef VADASA_COMMON_RANDOM_H_
#define VADASA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vadasa {

/// Deterministic, seedable PRNG (xoshiro256**). All experiments in the bench
/// harness fix seeds so that every run regenerates identical datasets.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n).
  uint64_t NextBelow(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Gamma(shape, scale) via Marsaglia–Tsang (with Ahrens–Dieter boost for
  /// shape < 1).
  double NextGamma(double shape, double scale);

  /// Poisson(mean) — inversion for small means, PTRS-style normal
  /// approximation fallback for large means.
  uint64_t NextPoisson(double mean);

  /// Negative binomial with size r and success probability p, sampled as a
  /// Gamma–Poisson mixture: Poisson(Gamma(r, (1-p)/p)). This is the sampler
  /// the individual-risk experiment plugs in (Section 5.2).
  uint64_t NextNegativeBinomial(double r, double p);

  /// Index drawn from an (unnormalized) weight vector.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 → uniform).
  size_t NextZipf(size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Probability mass/aggregate helpers used by the individual-risk estimator.
namespace stats {

/// Mean of 1/F where F ~ posterior of the population frequency given sample
/// frequency f and summed weights w, under the paper's negative-binomial
/// assumption. Closed form used for the estimator; the bench's "library" mode
/// instead Monte-Carlo samples it through Rng::NextNegativeBinomial.
double NegBinomialPosteriorRiskClosedForm(double sample_freq, double weight_sum);

/// Monte-Carlo estimate of E[f/F] with `draws` samples from the posterior of
/// the population frequency F (clamped to F >= sample_freq). Deterministic
/// given the Rng.
double NegBinomialPosteriorRiskSampled(double sample_freq, double weight_sum,
                                       int draws, Rng* rng);

/// The exact Benedetti–Franconi individual-risk estimator (the formulas
/// µ-Argus and sdcMicro implement, [7][22]): with π = f/ΣW the estimated
/// sampling rate of the combination,
///   f = 1:  ρ = π/(1−π) · ln(1/π)
///   f = 2:  ρ = π/(1−π) − (π/(1−π))² · ln(1/π)
///   f = 3:  ρ = π/(1−π) · [ (π/(1−π))² · ln(1/π) − π/(1−π) + 1/2 ]  (BF84-style)
///   f > 3:  ρ ≈ π (the simple estimator, adequate for non-unique tuples)
/// Clamped to [0,1]; π → 1 yields ρ = 1.
double BenedettiFranconiRisk(double sample_freq, double weight_sum);

}  // namespace stats

}  // namespace vadasa

#endif  // VADASA_COMMON_RANDOM_H_
