#ifndef VADASA_COMMON_FAILPOINT_H_
#define VADASA_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

/// Deterministic fault injection for the serving stack (docs/robustness.md).
///
/// A failpoint is a named site in production code where a test, a chaos run,
/// or an operator can inject a failure without recompiling. Sites are
/// always compiled in and always cheap: a disarmed site costs one relaxed
/// atomic load (the same discipline as the obs tracer), so the serving hot
/// path pays nothing measurable for the coverage.
///
/// Per-site policies:
///   off          never fires (the default)
///   error        every evaluation fails with an injected Status
///   delay(MS)    every evaluation sleeps MS milliseconds, then succeeds
///   crash-once   the first evaluation aborts the process; later ones pass
///   every(N)     every Nth evaluation (N, 2N, ...) fails; others pass
///
/// `error` and `every` accept an optional status-code name — e.g.
/// `error(io)`, `every(3,unavailable)` — from {internal, io, unavailable,
/// failed, cancelled, deadline}; the default is internal.
///
/// Arming:
///   - process-wide, at startup: VADASA_FAILPOINTS="site=policy;site=policy"
///     (read once, on first registry access);
///   - programmatically: Arm() / ArmFromSpec() / DisarmAll() — the test API
///     the chaos property drives with seeded random policies.
///
/// Everything is deterministic: policies count evaluations, never flip coins.
/// Injection must never corrupt: a fired site either returns a clean non-OK
/// Status the caller already handles, sleeps, or (crash-once) kills the
/// process outright — there is no partial-effect mode.
namespace vadasa::failpoint {

enum class Mode : uint8_t {
  kOff = 0,
  kError,
  kDelay,
  kCrashOnce,
  kEveryNth,
};

/// The armed behavior of one site.
struct Policy {
  Mode mode = Mode::kOff;
  /// kDelay: milliseconds to sleep. kEveryNth: the period N (>= 1).
  uint64_t arg = 0;
  /// Status code injected by kError / kEveryNth fires.
  StatusCode code = StatusCode::kInternal;
};

/// One registered site. Handles are stable for the process lifetime; resolve
/// once per call site (the VADASA_FAILPOINT macro does) and evaluate per
/// pass. All members are safe to call from concurrent threads.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// The fast path: false (one relaxed load) while the site is disarmed.
  bool armed() const {
    return mode_.load(std::memory_order_relaxed) != Mode::kOff;
  }

  /// Full evaluation: counts the hit, applies the policy (sleeping for
  /// kDelay, aborting for an unlatched kCrashOnce) and returns the injected
  /// Status for a fired error policy, OK otherwise. Callers on the fast path
  /// should gate on armed() first — the macro below does.
  Status Eval();

  /// Like Eval() for call sites that cannot propagate a Status (socket
  /// loops): true when an error policy fired this evaluation. Delays still
  /// sleep; crash-once still aborts.
  bool Fires() { return !Eval().ok(); }

  const std::string& name() const { return name_; }
  Policy policy() const;
  /// Evaluations seen while armed (any mode), and error-policy firings.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  friend void ApplyPolicy(Failpoint*, const Policy&);

  const std::string name_;
  std::atomic<Mode> mode_{Mode::kOff};
  std::atomic<uint64_t> arg_{0};
  std::atomic<StatusCode> code_{StatusCode::kInternal};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};
  std::atomic<bool> crash_latched_{false};
};

/// The stable handle for `name`, registering the site on first use. The
/// first registry access of the process also arms every site named in
/// VADASA_FAILPOINTS.
Failpoint* GetFailpoint(const std::string& name);

/// Parses one policy text ("off", "error", "error(io)", "delay(25)",
/// "crash-once", "every(3)", "every(3,unavailable)").
Result<Policy> ParsePolicy(const std::string& text);

/// Arms one site (test API). Counters keep accumulating across re-arms;
/// arming Mode::kOff disarms.
Status Arm(const std::string& name, Policy policy);

/// Arms every `site=policy` pair of a VADASA_FAILPOINTS-syntax spec
/// (";"-separated; empty segments ignored). Fails atomically-per-site: sites
/// before a malformed segment stay armed.
Status ArmFromSpec(const std::string& spec);

/// Disarms every site (policies to kOff; registrations and counters remain).
void DisarmAll();

/// Name + policy of every currently armed site, name-sorted.
std::vector<std::pair<std::string, Policy>> ArmedSites();

/// RAII arming for tests and properties: arms `spec` on construction (empty
/// = none) and disarms every site on destruction, so a failed test cannot
/// leak faults into the next one.
class ScopedFailpoints {
 public:
  ScopedFailpoints() = default;
  explicit ScopedFailpoints(const std::string& spec);
  ~ScopedFailpoints() { DisarmAll(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

}  // namespace vadasa::failpoint

/// Status-returning failpoint site: resolves the handle once, then pays one
/// relaxed load per pass while disarmed. When the site fires an error policy
/// the enclosing function returns the injected Status (it must return Status
/// or Result<T>).
#define VADASA_FAILPOINT(site_name)                                  \
  do {                                                               \
    static ::vadasa::failpoint::Failpoint* vadasa_failpoint_ =       \
        ::vadasa::failpoint::GetFailpoint(site_name);                \
    if (vadasa_failpoint_->armed()) {                                \
      ::vadasa::Status vadasa_failpoint_status_ =                    \
          vadasa_failpoint_->Eval();                                 \
      if (!vadasa_failpoint_status_.ok()) return vadasa_failpoint_status_; \
    }                                                                \
  } while (0)

#endif  // VADASA_COMMON_FAILPOINT_H_
