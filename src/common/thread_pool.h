#ifndef VADASA_COMMON_THREAD_POOL_H_
#define VADASA_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace vadasa {

/// A fixed-size worker pool with a deterministic data-parallel helper.
///
/// Determinism contract: ParallelFor decomposes [begin, end) into fixed
/// contiguous shards of `grain` elements — the decomposition depends only on
/// the range and the grain, never on the pool size. Callers that write each
/// shard's result into its own slot (and merge shards in shard order) thus
/// produce bit-identical output for any thread count, including 1. All risk
/// estimators in src/core rely on this to keep parallel risk vectors equal to
/// the sequential ones.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// every ParallelFor). `num_threads` is clamped to at least 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Calls fn(shard_begin, shard_end, shard_index) for every fixed-size shard
  /// of [begin, end). Shards are claimed dynamically by the workers plus the
  /// calling thread; the call returns after every shard completed. `fn` must
  /// confine its writes to per-shard state. Runs inline (no handoff) when the
  /// range fits one shard, the pool has a single thread, or ParallelFor is
  /// re-entered from a worker.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// The process-wide pool used by the core risk estimators. Sized by the
  /// VADASA_THREADS environment variable, defaulting to
  /// std::thread::hardware_concurrency().
  static ThreadPool& Global();

  /// Replaces the global pool with an `n`-thread one and returns the previous
  /// size. Test/bench hook — not safe while another thread is inside
  /// Global().ParallelFor.
  static size_t SetGlobalThreads(size_t n);

  /// VADASA_THREADS if set to a positive integer, else hardware concurrency.
  static size_t DefaultThreads();

  /// Cross-thread context propagation for ParallelFor. `capture` runs on the
  /// submitting thread when a job is published; `install` runs on a worker
  /// before it claims shards of that job and returns the value to restore;
  /// `restore` runs after the worker finished the job. The tracing layer uses
  /// this to parent shard spans to the submitting thread's open span and to
  /// carry the request's trace id onto the workers — the pool itself carries
  /// an opaque token pair and has no observability dependency. Hooks are
  /// process-global; pass nullptrs to clear. Registering while jobs are in
  /// flight is safe (each hook is checked independently).
  struct TaskContext {
    uint64_t span = 0;
    uint64_t trace = 0;
  };
  using ContextCaptureFn = TaskContext (*)();
  using ContextInstallFn = TaskContext (*)(TaskContext context);
  using ContextRestoreFn = void (*)(TaskContext previous);
  static void SetContextHooks(ContextCaptureFn capture, ContextInstallFn install,
                              ContextRestoreFn restore);

 private:
  struct Impl;
  Impl* impl_;
  size_t num_threads_ = 1;
};

}  // namespace vadasa

#endif  // VADASA_COMMON_THREAD_POOL_H_
