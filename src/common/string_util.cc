#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace vadasa {

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool LooksLikeInt(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return false;
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool LooksLikeDouble(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in GCC 12.
  double v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace vadasa
