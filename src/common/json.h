#ifndef VADASA_COMMON_JSON_H_
#define VADASA_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace vadasa {

/// A minimal JSON document model for the serving wire protocol (RFC 8259
/// subset: UTF-8 passed through verbatim, \uXXXX escapes decoded to UTF-8,
/// numbers held as double). Small by design — the exporters in obs/ keep
/// their hand-rolled writers; this type exists for the code that must *parse*
/// requests off a socket and echo structured replies.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : repr_(nullptr) {}                       ///< null
  Json(std::nullptr_t) : repr_(nullptr) {}         // NOLINT(runtime/explicit)
  Json(bool b) : repr_(b) {}                       // NOLINT(runtime/explicit)
  Json(double d) : repr_(d) {}                     // NOLINT(runtime/explicit)
  Json(int i) : repr_(static_cast<double>(i)) {}   // NOLINT(runtime/explicit)
  Json(int64_t i) : repr_(static_cast<double>(i)) {}  // NOLINT(runtime/explicit)
  Json(uint64_t i) : repr_(static_cast<double>(i)) {}  // NOLINT(runtime/explicit)
  Json(const char* s) : repr_(std::string(s)) {}   // NOLINT(runtime/explicit)
  Json(std::string s) : repr_(std::move(s)) {}     // NOLINT(runtime/explicit)
  Json(Array a) : repr_(std::move(a)) {}           // NOLINT(runtime/explicit)
  Json(Object o) : repr_(std::move(o)) {}          // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_number() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_array() const { return std::holds_alternative<Array>(repr_); }
  bool is_object() const { return std::holds_alternative<Object>(repr_); }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? std::get<bool>(repr_) : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? std::get<double>(repr_) : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(std::get<double>(repr_)) : fallback;
  }
  const std::string& AsString() const;  ///< Empty string when not a string.

  const Array& AsArray() const;    ///< Empty array when not an array.
  const Object& AsObject() const;  ///< Empty object when not an object.

  /// Object member lookup; a shared null when absent or not an object.
  const Json& operator[](const std::string& key) const;
  /// Mutable object member access (converts a null to an object first).
  Json& operator[](const std::string& key);

  /// Typed member accessors with fallbacks, for request decoding.
  std::string GetString(const std::string& key, const std::string& fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  bool Has(const std::string& key) const;

  /// Compact single-line serialization (object keys in map order).
  std::string Dump() const;

  /// Parses one JSON document; trailing non-whitespace is a ParseError.
  static Result<Json> Parse(const std::string& text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> repr_;
};

/// Escapes `s` into a double-quoted JSON string literal.
std::string JsonQuote(const std::string& s);

}  // namespace vadasa

#endif  // VADASA_COMMON_JSON_H_
