#include "common/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace vadasa {

namespace {

/// Parses one CSV record starting at *pos; advances *pos past the record's
/// trailing newline (if any).
std::vector<std::string> ParseRecord(std::string_view text, size_t* pos) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // Swallow; \r\n handled by the \n branch on the next char.
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  *pos = i;
  return fields;
}

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendField(std::string* out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text) {
  CsvTable table;
  size_t pos = 0;
  if (text.empty()) return Status::ParseError("empty CSV document");
  table.header = ParseRecord(text, &pos);
  size_t line = 1;
  while (pos < text.size()) {
    ++line;
    auto row = ParseRecord(text, &pos);
    if (row.size() == 1 && row[0].empty()) continue;  // Trailing blank line.
    if (row.size() != table.header.size()) {
      return Status::ParseError("CSV row " + std::to_string(line) + " has " +
                                std::to_string(row.size()) + " fields, header has " +
                                std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out += ',';
    AppendField(&out, table.header[i]);
  }
  out += '\n';
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      AppendField(&out, row[i]);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsv(table);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Value CellToValue(std::string_view cell) {
  const std::string_view trimmed = TrimView(cell);
  for (std::string_view prefix : {std::string_view("NULL_"), std::string_view("⊥_")}) {
    if (StartsWith(trimmed, prefix)) {
      const std::string_view rest = trimmed.substr(prefix.size());
      uint64_t label = 0;
      auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), label);
      if (ec == std::errc() && ptr == rest.data() + rest.size()) {
        return Value::Null(label);
      }
    }
  }
  if (LooksLikeInt(trimmed)) {
    int64_t v = 0;
    std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), v);
    return Value::Int(v);
  }
  if (LooksLikeDouble(trimmed)) {
    double v = 0;
    std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), v);
    return Value::Double(v);
  }
  return Value::String(std::string(trimmed));
}

}  // namespace vadasa
