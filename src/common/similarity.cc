#include "common/similarity.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace vadasa {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t cur = row[i];
      const size_t sub = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
      prev = cur;
    }
  }
  return row[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t m = std::max(a.size(), b.size());
  if (m == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) / static_cast<double>(m);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > match_window ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t t = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - t / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

namespace {

std::vector<std::string> Tokens(std::string_view s) {
  std::string lowered = ToLower(s);
  for (char& c : lowered) {
    if (c == '_' || c == '-' || c == '.' || c == '/') c = ' ';
  }
  auto toks = SplitWhitespace(lowered);
  std::sort(toks.begin(), toks.end());
  toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
  return toks;
}

}  // namespace

double TokenJaccardSimilarity(std::string_view a, std::string_view b) {
  const auto ta = Tokens(a);
  const auto tb = Tokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  std::vector<std::string> inter;
  std::set_intersection(ta.begin(), ta.end(), tb.begin(), tb.end(),
                        std::back_inserter(inter));
  const size_t uni = ta.size() + tb.size() - inter.size();
  if (uni == 0) return 1.0;
  return static_cast<double>(inter.size()) / static_cast<double>(uni);
}

std::string Soundex(std::string_view s) {
  auto code = [](char c) -> char {
    switch (std::tolower(static_cast<unsigned char>(c))) {
      case 'b': case 'f': case 'p': case 'v': return '1';
      case 'c': case 'g': case 'j': case 'k': case 'q': case 's': case 'x':
      case 'z': return '2';
      case 'd': case 't': return '3';
      case 'l': return '4';
      case 'm': case 'n': return '5';
      case 'r': return '6';
      default: return '0';  // Vowels, h, w, and non-letters.
    }
  };
  // Skip to the first alphabetic character.
  size_t start = 0;
  while (start < s.size() && !std::isalpha(static_cast<unsigned char>(s[start]))) {
    ++start;
  }
  if (start == s.size()) return "0000";
  std::string out(1, static_cast<char>(std::toupper(static_cast<unsigned char>(s[start]))));
  char prev = code(s[start]);
  for (size_t i = start + 1; i < s.size() && out.size() < 4; ++i) {
    const char c = s[i];
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      prev = '0';
      continue;
    }
    const char digit = code(c);
    const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower == 'h' || lower == 'w') continue;  // Transparent for adjacency.
    if (digit != '0' && digit != prev) out += digit;
    prev = digit;
  }
  while (out.size() < 4) out += '0';
  return out;
}

double AttributeNameSimilarity(std::string_view a, std::string_view b) {
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  return std::max(JaroWinklerSimilarity(la, lb), TokenJaccardSimilarity(la, lb));
}

}  // namespace vadasa
