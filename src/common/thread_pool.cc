#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vadasa {

namespace {

thread_local bool t_inside_pool = false;

std::atomic<ThreadPool::ContextCaptureFn> g_context_capture{nullptr};
std::atomic<ThreadPool::ContextInstallFn> g_context_install{nullptr};
std::atomic<ThreadPool::ContextRestoreFn> g_context_restore{nullptr};

}  // namespace

struct ThreadPool::Impl {
  // One ParallelFor in flight at a time. Each job is a heap-allocated
  // snapshot shared with the workers, so a worker that wakes late (or is
  // still draining the cursor when the submitter moves on) only ever touches
  // its own job's state — never the fields of the next job.
  struct Job {
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t num_shards = 0;
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    ThreadPool::TaskContext context;  ///< Captured on the submitting thread (see hooks).
    std::atomic<size_t> next_shard{0};
    std::atomic<size_t> pending_shards{0};
  };

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  std::vector<std::thread> workers;
  bool shutdown = false;

  // Published under mutex; workers copy the shared_ptr before running.
  uint64_t job_id = 0;
  std::shared_ptr<Job> job;

  // Claims shards off the job's cursor until none remain. Once
  // pending_shards reaches 0 every fn call has completed, so late claimers
  // (shard >= num_shards) return without touching fn — fn may dangle by
  // then, but is never dereferenced.
  void RunShards(Job& j) {
    for (;;) {
      const size_t shard = j.next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= j.num_shards) return;
      const size_t lo = j.begin + shard * j.grain;
      const size_t hi = std::min(j.end, lo + j.grain);
      (*j.fn)(lo, hi, shard);
      if (j.pending_shards.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex);
        work_done.notify_all();
      }
    }
  }

  void WorkerLoop() {
    t_inside_pool = true;
    uint64_t seen_job = 0;
    for (;;) {
      std::shared_ptr<Job> current;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return shutdown || job_id != seen_job; });
        if (shutdown) return;
        seen_job = job_id;
        current = job;
      }
      const auto install = g_context_install.load(std::memory_order_acquire);
      const auto restore = g_context_restore.load(std::memory_order_acquire);
      ThreadPool::TaskContext previous;
      if (install != nullptr) previous = install(current->context);
      RunShards(*current);
      if (install != nullptr && restore != nullptr) restore(previous);
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads) : impl_(new Impl()) {
  num_threads_ = num_threads < 1 ? 1 : num_threads;
  for (size_t i = 1; i < num_threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t num_shards = (end - begin + grain - 1) / grain;
  // Inline when parallelism cannot help (or when re-entered from a worker:
  // handing shards back to the busy pool would deadlock the caller).
  if (num_shards == 1 || num_threads_ == 1 || impl_->workers.empty() ||
      t_inside_pool) {
    for (size_t shard = 0; shard < num_shards; ++shard) {
      const size_t lo = begin + shard * grain;
      fn(lo, std::min(end, lo + grain), shard);
    }
    return;
  }
  auto job = std::make_shared<Impl::Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_shards = num_shards;
  job->fn = &fn;
  if (const auto capture = g_context_capture.load(std::memory_order_acquire)) {
    job->context = capture();
  }
  job->pending_shards.store(num_shards, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->job_id;
  }
  impl_->work_ready.notify_all();
  const bool was_inside = t_inside_pool;
  t_inside_pool = true;
  impl_->RunShards(*job);
  t_inside_pool = was_inside;
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->work_done.wait(
      lock, [&] { return job->pending_shards.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::SetContextHooks(ContextCaptureFn capture, ContextInstallFn install,
                                 ContextRestoreFn restore) {
  g_context_capture.store(capture, std::memory_order_release);
  g_context_install.store(install, std::memory_order_release);
  g_context_restore.store(restore, std::memory_order_release);
}

size_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("VADASA_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n > 0) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultThreads());
  }
  return *g_global_pool;
}

size_t ThreadPool::SetGlobalThreads(size_t n) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  const size_t previous = g_global_pool ? g_global_pool->num_threads() : DefaultThreads();
  g_global_pool = std::make_unique<ThreadPool>(n < 1 ? 1 : n);
  return previous;
}

}  // namespace vadasa
