#ifndef VADASA_COMMON_VALUE_H_
#define VADASA_COMMON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace vadasa {

/// Runtime type tag of a Value.
enum class ValueKind : uint8_t {
  kNull = 0,  ///< A labelled null ⊥_id (not SQL NULL: nulls are distinguishable).
  kBool,
  kInt,
  kDouble,
  kString,
  kList,  ///< An ordered tuple of values.
  kSet,   ///< A canonically sorted, duplicate-free collection of values.
};

/// A dynamically typed value: the domain of microdata cells and Vadalog terms.
///
/// Labelled nulls carry a numeric label so that ⊥_1 ≠ ⊥_2 under the standard
/// (Skolem-chase) semantics, while the *maybe-match* semantics of the paper
/// (Section 4.3) lets a null match anything; see MaybeEquals().
///
/// Values are small, copyable and totally ordered (ordering first by kind,
/// then by payload), so they can serve as keys in maps and sets.
class Value {
 public:
  /// Default-constructs the labelled null ⊥_0.
  Value() : kind_(ValueKind::kNull), int_(0) {}

  static Value Null(uint64_t label) {
    Value v;
    v.kind_ = ValueKind::kNull;
    v.int_ = static_cast<int64_t>(label);
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = ValueKind::kBool;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = ValueKind::kInt;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.kind_ = ValueKind::kDouble;
    v.double_ = d;
    return v;
  }
  static Value String(std::string s);
  /// Builds an ordered tuple.
  static Value List(std::vector<Value> items);
  /// Builds a set: items are sorted and deduplicated.
  static Value Set(std::vector<Value> items);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_bool() const { return kind_ == ValueKind::kBool; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_double() const { return kind_ == ValueKind::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == ValueKind::kString; }
  bool is_list() const { return kind_ == ValueKind::kList; }
  bool is_set() const { return kind_ == ValueKind::kSet; }
  bool is_collection() const { return is_list() || is_set(); }

  uint64_t null_label() const { return static_cast<uint64_t>(int_); }
  bool as_bool() const { return int_ != 0; }
  int64_t as_int() const { return int_; }
  double as_double() const {
    return kind_ == ValueKind::kDouble ? double_ : static_cast<double>(int_);
  }
  const std::string& as_string() const { return *str_; }
  const std::vector<Value>& items() const { return *items_; }

  /// Numeric value of an int or double; TypeError otherwise.
  Result<double> ToNumeric() const;

  /// Strict equality: labelled nulls are equal iff their labels are equal;
  /// ints and doubles compare numerically.
  bool Equals(const Value& other) const;

  /// The paper's =⊥ maybe-match relation: values match if strictly equal or
  /// if either side is a labelled null (any null, regardless of label).
  bool MaybeEquals(const Value& other) const;

  /// Total order for container keys: by kind, then payload. Numerics of
  /// different kinds (int vs double) are ordered by numeric value first.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  /// Renders the value: nulls as "⊥_k", strings unquoted, lists as (a,b),
  /// sets as {a,b}. For diagnostics and golden tests.
  std::string ToString() const;

 private:
  ValueKind kind_;
  union {
    int64_t int_;
    double double_;
  };
  std::shared_ptr<const std::string> str_;
  std::shared_ptr<const std::vector<Value>> items_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash/equality over tuples of values (rows, grouping keys).
size_t HashValues(const std::vector<Value>& values);

}  // namespace vadasa

#endif  // VADASA_COMMON_VALUE_H_
