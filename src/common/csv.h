#ifndef VADASA_COMMON_CSV_H_
#define VADASA_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace vadasa {

/// A parsed CSV document: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// RFC-4180-ish CSV parsing: quoted fields with embedded commas, quotes
/// doubled inside quoted fields, \r\n or \n row separators. The first row is
/// the header. Rows whose width differs from the header are an error.
Result<CsvTable> ParseCsv(std::string_view text);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serializes to CSV, quoting fields when needed.
std::string WriteCsv(const CsvTable& table);

/// Writes a CSV file to disk.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

/// Converts a cell to a Value: integers and doubles are detected, the literal
/// token "NULL_k" (or "⊥_k") becomes a labelled null, everything else stays a
/// string.
Value CellToValue(std::string_view cell);

}  // namespace vadasa

#endif  // VADASA_COMMON_CSV_H_
