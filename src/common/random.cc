#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace vadasa {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGamma(double shape, double scale) {
  if (shape < 1.0) {
    // Ahrens–Dieter boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double u = std::max(NextDouble(), 1e-300);
    return NextGamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double l = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the data
  // generator's large-mean regime.
  const double x = mean + std::sqrt(mean) * NextGaussian() + 0.5;
  return x < 0.0 ? 0 : static_cast<uint64_t>(x);
}

uint64_t Rng::NextNegativeBinomial(double r, double p) {
  if (r <= 0.0 || p <= 0.0) return 0;
  if (p >= 1.0) return 0;
  const double lambda = NextGamma(r, (1.0 - p) / p);
  return NextPoisson(lambda);
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return 0;
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= std::max(weights[i], 0.0);
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return static_cast<size_t>(NextBelow(n));
  // Cumulative inversion; n is small (category domains) in this codebase.
  double total = 0.0;
  for (size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(static_cast<double>(i), s);
  double x = NextDouble() * total;
  for (size_t i = 1; i <= n; ++i) {
    x -= 1.0 / std::pow(static_cast<double>(i), s);
    if (x < 0.0) return i - 1;
  }
  return n - 1;
}

namespace stats {

double NegBinomialPosteriorRiskClosedForm(double sample_freq, double weight_sum) {
  // The paper (Algorithm 5) poses λ = ΣW_t / f_q̂ and estimates ρ = 1/λ =
  // f / ΣW. We clamp to [0,1]: a combination cannot be more than certainly
  // re-identified.
  if (weight_sum <= 0.0) return 1.0;
  return std::min(1.0, sample_freq / weight_sum);
}

double NegBinomialPosteriorRiskSampled(double sample_freq, double weight_sum,
                                       int draws, Rng* rng) {
  if (weight_sum <= 0.0 || draws <= 0) return 1.0;
  // Sample population frequencies F ~ NegBin with mean ΣW (the expected
  // number of population entities sharing the combination), then average 1/F.
  // The success probability is chosen so that E[F] = weight_sum with
  // dispersion r = sample_freq (more sample evidence, tighter posterior).
  const double r = std::max(sample_freq, 1.0);
  const double mean = std::max(weight_sum, sample_freq);
  const double p = r / (r + mean);
  double acc = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double population = std::max<double>(
        sample_freq, static_cast<double>(rng->NextNegativeBinomial(r, p)));
    // f sample units among F population units: the respondent's
    // re-identification odds are f/F, matching the closed form f/ΣW in
    // expectation (Jensen puts the MC estimate slightly above).
    acc += sample_freq / std::max(1.0, population);
  }
  return std::min(1.0, acc / draws);
}

double BenedettiFranconiRisk(double sample_freq, double weight_sum) {
  if (weight_sum <= 0.0 || sample_freq <= 0.0) return 1.0;
  const double pi = sample_freq / weight_sum;
  if (pi >= 1.0) return 1.0;
  if (pi <= 0.0) return 0.0;
  const double odds = pi / (1.0 - pi);
  const double log_term = std::log(1.0 / pi);
  double risk;
  if (sample_freq <= 1.0) {
    risk = odds * log_term;
  } else if (sample_freq <= 2.0) {
    risk = odds - odds * odds * log_term;
  } else if (sample_freq <= 3.0) {
    risk = odds * (odds * odds * log_term - odds + 0.5);
  } else {
    risk = pi;
  }
  if (risk < 0.0) return 0.0;
  return std::min(1.0, risk);
}

}  // namespace stats

}  // namespace vadasa
