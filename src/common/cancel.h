#ifndef VADASA_COMMON_CANCEL_H_
#define VADASA_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace vadasa {

/// Cooperative cancellation + deadline token shared between a controller (a
/// job scheduler, a signal handler) and long-running library code (the
/// anonymization cycle). The controller flips Cancel() or arms a deadline;
/// workers poll Check() at natural yield points (iteration boundaries) and
/// unwind with a non-OK Status. Polling is a relaxed atomic load plus, when a
/// deadline is armed, one steady_clock read — cheap enough for per-iteration
/// checks, not meant for per-row ones.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms an absolute deadline; Check() fails once steady_clock passes it.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }

  /// Arms a deadline `timeout` from now. Non-positive timeouts are ignored.
  void SetTimeout(std::chrono::nanoseconds timeout) {
    if (timeout.count() <= 0) return;
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  bool deadline_expired() const {
    const int64_t d = deadline_ns_.load(std::memory_order_acquire);
    return d != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= d;
  }

  /// OK while neither cancelled nor past the deadline.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("operation cancelled");
    if (deadline_expired()) return Status::DeadlineExceeded("deadline expired");
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// steady_clock deadline in ns-since-epoch; 0 = no deadline armed.
  std::atomic<int64_t> deadline_ns_{0};
};

}  // namespace vadasa

#endif  // VADASA_COMMON_CANCEL_H_
