#include "common/value.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace vadasa {

namespace {

size_t HashCombine(size_t seed, size_t h) {
  // Boost-style combiner.
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

Value Value::String(std::string s) {
  Value v;
  v.kind_ = ValueKind::kString;
  v.str_ = std::make_shared<const std::string>(std::move(s));
  return v;
}

Value Value::List(std::vector<Value> items) {
  Value v;
  v.kind_ = ValueKind::kList;
  v.items_ = std::make_shared<const std::vector<Value>>(std::move(items));
  return v;
}

Value Value::Set(std::vector<Value> items) {
  std::sort(items.begin(), items.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  items.erase(std::unique(items.begin(), items.end(),
                          [](const Value& a, const Value& b) {
                            return a.Compare(b) == 0;
                          }),
              items.end());
  Value v;
  v.kind_ = ValueKind::kSet;
  v.items_ = std::make_shared<const std::vector<Value>>(std::move(items));
  return v;
}

Result<double> Value::ToNumeric() const {
  if (is_int()) return static_cast<double>(int_);
  if (is_double()) return double_;
  return Status::TypeError("value is not numeric: " + ToString());
}

bool Value::Equals(const Value& other) const { return Compare(other) == 0; }

bool Value::MaybeEquals(const Value& other) const {
  if (is_null() || other.is_null()) return true;
  return Equals(other);
}

int Value::Compare(const Value& other) const {
  // Cross-kind numeric comparison so Int(2) == Double(2.0).
  if (is_numeric() && other.is_numeric()) {
    const double a = as_double();
    const double b = other.as_double();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case ValueKind::kNull:
    case ValueKind::kBool:
    case ValueKind::kInt:
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    case ValueKind::kDouble: {
      if (double_ < other.double_) return -1;
      if (double_ > other.double_) return 1;
      return 0;
    }
    case ValueKind::kString:
      return str_->compare(*other.str_);
    case ValueKind::kList:
    case ValueKind::kSet: {
      const auto& a = *items_;
      const auto& b = *other.items_;
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() < b.size()) return -1;
      if (a.size() > b.size()) return 1;
      return 0;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  size_t seed = 0;
  switch (kind_) {
    case ValueKind::kNull:
      seed = HashCombine(1, std::hash<int64_t>()(int_));
      break;
    case ValueKind::kBool:
      seed = HashCombine(2, std::hash<int64_t>()(int_));
      break;
    case ValueKind::kInt:
      // Hash ints through double so Int(2) and Double(2.0) collide, matching
      // Compare()'s cross-kind numeric equality.
      seed = HashCombine(3, std::hash<double>()(static_cast<double>(int_)));
      break;
    case ValueKind::kDouble:
      seed = HashCombine(3, std::hash<double>()(double_));
      break;
    case ValueKind::kString:
      seed = HashCombine(4, std::hash<std::string>()(*str_));
      break;
    case ValueKind::kList:
    case ValueKind::kSet:
      seed = kind_ == ValueKind::kList ? 5 : 6;
      for (const Value& v : *items_) seed = HashCombine(seed, v.Hash());
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "⊥_" + std::to_string(int_);
    case ValueKind::kBool:
      return int_ ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(int_);
    case ValueKind::kDouble: {
      // Render integral doubles without a trailing ".0" explosion, but keep
      // precision for the rest.
      std::ostringstream os;
      os << double_;
      return os.str();
    }
    case ValueKind::kString:
      return *str_;
    case ValueKind::kList:
    case ValueKind::kSet: {
      std::string out = kind_ == ValueKind::kList ? "(" : "{";
      for (size_t i = 0; i < items_->size(); ++i) {
        if (i > 0) out += ",";
        out += (*items_)[i].ToString();
      }
      out += kind_ == ValueKind::kList ? ")" : "}";
      return out;
    }
  }
  return "?";
}

size_t HashValues(const std::vector<Value>& values) {
  size_t seed = values.size();
  for (const Value& v : values) seed = HashCombine(seed, v.Hash());
  return seed;
}

}  // namespace vadasa
