#ifndef VADASA_COMMON_STATUS_H_
#define VADASA_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace vadasa {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kTypeError,
  kEgdViolation,     ///< An equality-generating dependency failed on constants.
  kLimitExceeded,    ///< A chase/termination limit was hit.
  kIoError,
  kInternal,
  kNotImplemented,
  kCancelled,          ///< The operation was cooperatively cancelled.
  kDeadlineExceeded,   ///< A job deadline/timeout expired.
  kUnavailable,        ///< A bounded resource (e.g. admission queue) is full.
};

/// Returns a stable human-readable name for a StatusCode ("OK", "ParseError"...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail, in the Arrow/RocksDB idiom.
///
/// Functions in this codebase do not throw; fallible operations return a
/// Status (or a Result<T>, see result.h). The OK status is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status EgdViolation(std::string msg) {
    return Status(StatusCode::kEgdViolation, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define VADASA_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::vadasa::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace vadasa

#endif  // VADASA_COMMON_STATUS_H_
