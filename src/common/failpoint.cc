#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace vadasa::failpoint {

namespace {

/// Site registry. Handles are never deleted, so call sites may cache them in
/// function-local statics (the VADASA_FAILPOINT macro does).
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Failpoint>> sites;

  Failpoint* GetOrCreate(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    auto& slot = sites[name];
    if (slot == nullptr) slot = std::make_unique<Failpoint>(name);
    return slot.get();
  }

  static Registry& Instance() {
    static Registry* registry = new Registry();
    return *registry;
  }
};

StatusCode CodeFromName(const std::string& name, bool* ok) {
  *ok = true;
  if (name.empty() || name == "internal") return StatusCode::kInternal;
  if (name == "io") return StatusCode::kIoError;
  if (name == "unavailable") return StatusCode::kUnavailable;
  if (name == "failed") return StatusCode::kFailedPrecondition;
  if (name == "cancelled") return StatusCode::kCancelled;
  if (name == "deadline") return StatusCode::kDeadlineExceeded;
  *ok = false;
  return StatusCode::kInternal;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

/// Splits "head(a,b)" into head and its argument list; no-paren input is all
/// head. Returns false on mismatched parentheses or trailing junk.
bool SplitCall(const std::string& text, std::string* head,
               std::vector<std::string>* args) {
  const size_t open = text.find('(');
  if (open == std::string::npos) {
    *head = text;
    return true;
  }
  const size_t close = text.find(')', open);
  if (close == std::string::npos || close != text.size() - 1) return false;
  *head = Trim(text.substr(0, open));
  std::string inner = text.substr(open + 1, close - open - 1);
  size_t pos = 0;
  while (pos <= inner.size()) {
    const size_t comma = inner.find(',', pos);
    if (comma == std::string::npos) {
      args->push_back(Trim(inner.substr(pos)));
      break;
    }
    args->push_back(Trim(inner.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Applies VADASA_FAILPOINTS exactly once per process, before the first site
/// is handed out. A malformed spec is a startup warning, not a crash — the
/// process runs fault-free rather than not at all.
void EnsureEnvApplied() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* spec = std::getenv("VADASA_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return;
    const Status status = ArmFromSpec(spec);
    if (!status.ok()) {
      std::fprintf(stderr, "warning: VADASA_FAILPOINTS: %s\n",
                   status.ToString().c_str());
    }
  });
}

}  // namespace

/// Installs `policy` on `site`: payload first, mode last, so a concurrent
/// Eval never observes an armed mode with a stale argument. Re-arming resets
/// the crash-once latch.
void ApplyPolicy(Failpoint* site, const Policy& policy) {
  site->arg_.store(policy.arg, std::memory_order_relaxed);
  site->code_.store(policy.code, std::memory_order_relaxed);
  site->crash_latched_.store(false, std::memory_order_relaxed);
  site->mode_.store(policy.mode, std::memory_order_release);
}

Status Failpoint::Eval() {
  const Mode mode = mode_.load(std::memory_order_acquire);
  if (mode == Mode::kOff) return Status::OK();
  const uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto injected = [&]() -> Status {
    fires_.fetch_add(1, std::memory_order_relaxed);
    return Status(code_.load(std::memory_order_relaxed),
                  "failpoint \"" + name_ + "\" injected failure");
  };
  switch (mode) {
    case Mode::kOff:
      return Status::OK();
    case Mode::kError:
      return injected();
    case Mode::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(arg_.load(std::memory_order_relaxed)));
      return Status::OK();
    case Mode::kCrashOnce:
      if (!crash_latched_.exchange(true, std::memory_order_acq_rel)) {
        std::fprintf(stderr, "failpoint \"%s\": crash-once fired, aborting\n",
                     name_.c_str());
        std::abort();
      }
      return Status::OK();
    case Mode::kEveryNth: {
      const uint64_t n = std::max<uint64_t>(1, arg_.load(std::memory_order_relaxed));
      if (hit % n == 0) return injected();
      return Status::OK();
    }
  }
  return Status::OK();
}

Policy Failpoint::policy() const {
  Policy policy;
  policy.mode = mode_.load(std::memory_order_acquire);
  policy.arg = arg_.load(std::memory_order_relaxed);
  policy.code = code_.load(std::memory_order_relaxed);
  return policy;
}

Failpoint* GetFailpoint(const std::string& name) {
  EnsureEnvApplied();
  return Registry::Instance().GetOrCreate(name);
}

Result<Policy> ParsePolicy(const std::string& text) {
  std::string head;
  std::vector<std::string> args;
  if (!SplitCall(Trim(text), &head, &args)) {
    return Status::ParseError("malformed failpoint policy \"" + text + "\"");
  }
  Policy policy;
  bool code_ok = true;
  if (head == "off") {
    if (!args.empty()) {
      return Status::ParseError("policy \"off\" takes no arguments");
    }
    policy.mode = Mode::kOff;
  } else if (head == "error") {
    policy.mode = Mode::kError;
    if (args.size() > 1) {
      return Status::ParseError("policy \"error\" takes at most one code");
    }
    if (!args.empty()) policy.code = CodeFromName(args[0], &code_ok);
  } else if (head == "delay") {
    policy.mode = Mode::kDelay;
    if (args.size() != 1 || !ParseU64(args[0], &policy.arg)) {
      return Status::ParseError("policy \"delay\" needs delay(MS)");
    }
  } else if (head == "crash-once") {
    if (!args.empty()) {
      return Status::ParseError("policy \"crash-once\" takes no arguments");
    }
    policy.mode = Mode::kCrashOnce;
  } else if (head == "every") {
    policy.mode = Mode::kEveryNth;
    if (args.empty() || args.size() > 2 || !ParseU64(args[0], &policy.arg) ||
        policy.arg == 0) {
      return Status::ParseError("policy \"every\" needs every(N[,code]) with N >= 1");
    }
    if (args.size() == 2) policy.code = CodeFromName(args[1], &code_ok);
  } else {
    return Status::ParseError("unknown failpoint policy \"" + head + "\"");
  }
  if (!code_ok) {
    return Status::ParseError("unknown status code in policy \"" + text +
                              "\" (want internal/io/unavailable/failed/"
                              "cancelled/deadline)");
  }
  return policy;
}

Status Arm(const std::string& name, Policy policy) {
  EnsureEnvApplied();
  if (name.empty()) return Status::InvalidArgument("failpoint name is empty");
  ApplyPolicy(Registry::Instance().GetOrCreate(name), policy);
  return Status::OK();
}

Status ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) sep = spec.size();
    const std::string segment = Trim(spec.substr(pos, sep - pos));
    pos = sep + 1;
    if (segment.empty()) continue;
    const size_t eq = segment.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("failpoint spec segment \"" + segment +
                                "\" has no '=' (want site=policy)");
    }
    const std::string name = Trim(segment.substr(0, eq));
    if (name.empty()) {
      return Status::ParseError("failpoint spec segment \"" + segment +
                                "\" names no site");
    }
    VADASA_ASSIGN_OR_RETURN(const Policy policy,
                            ParsePolicy(segment.substr(eq + 1)));
    ApplyPolicy(Registry::Instance().GetOrCreate(name), policy);
  }
  return Status::OK();
}

void DisarmAll() {
  EnsureEnvApplied();
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& [name, site] : registry.sites) {
    (void)name;
    ApplyPolicy(site.get(), Policy{});
  }
}

std::vector<std::pair<std::string, Policy>> ArmedSites() {
  EnsureEnvApplied();
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::pair<std::string, Policy>> armed;
  for (const auto& [name, site] : registry.sites) {
    if (site->armed()) armed.emplace_back(name, site->policy());
  }
  return armed;
}

ScopedFailpoints::ScopedFailpoints(const std::string& spec) {
  const Status status = ArmFromSpec(spec);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: ScopedFailpoints: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace vadasa::failpoint
