#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace vadasa {

namespace {

const Json& NullJson() {
  static const Json* null = new Json();
  return *null;
}

const std::string& EmptyString() {
  static const std::string* s = new std::string();
  return *s;
}

const Json::Array& EmptyArray() {
  static const Json::Array* a = new Json::Array();
  return *a;
}

const Json::Object& EmptyObject() {
  static const Json::Object* o = new Json::Object();
  return *o;
}

/// Renders a double the way JSON expects: integers without a fraction,
/// everything else with enough digits to round-trip.
void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; null is the least-wrong spelling.
    *out += "null";
    return;
  }
  if (d == static_cast<double>(static_cast<int64_t>(d)) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    VADASA_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    struct DepthGuard {
      size_t* d;
      ~DepthGuard() { --*d; }
    } guard{&depth_};
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      VADASA_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (ConsumeWord("true")) return Json(true);
    if (ConsumeWord("false")) return Json(false);
    if (ConsumeWord("null")) return Json(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json::Object object;
    SkipWhitespace();
    if (Consume('}')) return Json(std::move(object));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      VADASA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      VADASA_ASSIGN_OR_RETURN(Json value, ParseValue());
      object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Json(std::move(object));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json::Array array;
    SkipWhitespace();
    if (Consume(']')) return Json(std::move(array));
    for (;;) {
      VADASA_ASSIGN_OR_RETURN(Json value, ParseValue());
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Json(std::move(array));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          VADASA_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pair: a high surrogate must be followed by \uDC00-DFFF.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              VADASA_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return Error("invalid low surrogate");
              }
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + e + "'");
      }
    }
    return Error("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (Consume('0')) {
      // No leading zeros.
    } else if (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    } else {
      return Error("malformed number");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed number fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed number exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return Json(value);
  }

  static constexpr size_t kMaxDepth = 128;
  const std::string& text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

void DumpTo(const Json& value, std::string* out);

void DumpTo(const Json& value, std::string* out) {
  if (value.is_null()) {
    *out += "null";
  } else if (value.is_bool()) {
    *out += value.AsBool() ? "true" : "false";
  } else if (value.is_number()) {
    AppendNumber(out, value.AsDouble());
  } else if (value.is_string()) {
    *out += JsonQuote(value.AsString());
  } else if (value.is_array()) {
    out->push_back('[');
    bool first = true;
    for (const Json& element : value.AsArray()) {
      if (!first) out->push_back(',');
      first = false;
      DumpTo(element, out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, element] : value.AsObject()) {
      if (!first) out->push_back(',');
      first = false;
      *out += JsonQuote(key);
      out->push_back(':');
      DumpTo(element, out);
    }
    out->push_back('}');
  }
}

}  // namespace

const std::string& Json::AsString() const {
  if (is_string()) return std::get<std::string>(repr_);
  return EmptyString();
}

const Json::Array& Json::AsArray() const {
  if (is_array()) return std::get<Array>(repr_);
  return EmptyArray();
}

const Json::Object& Json::AsObject() const {
  if (is_object()) return std::get<Object>(repr_);
  return EmptyObject();
}

const Json& Json::operator[](const std::string& key) const {
  if (is_object()) {
    const Object& object = std::get<Object>(repr_);
    auto it = object.find(key);
    if (it != object.end()) return it->second;
  }
  return NullJson();
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) repr_ = Object();
  return std::get<Object>(repr_)[key];
}

std::string Json::GetString(const std::string& key, const std::string& fallback) const {
  const Json& v = (*this)[key];
  return v.is_string() ? v.AsString() : fallback;
}

double Json::GetDouble(const std::string& key, double fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.AsDouble() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.AsInt() : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json& v = (*this)[key];
  return v.is_bool() ? v.AsBool() : fallback;
}

bool Json::Has(const std::string& key) const {
  return is_object() && std::get<Object>(repr_).count(key) > 0;
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace vadasa
