#ifndef VADASA_COMMON_DICTIONARY_H_
#define VADASA_COMMON_DICTIONARY_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace vadasa {

/// Labelled nulls occupy the upper half of the code space: codes in
/// [kNullCodeBase, 2^32) are nulls, codes below are regular values. The band
/// split makes "is this cell suppressed?" a single unsigned compare on the
/// packed code — no dictionary probe — while distinct labels still intern to
/// distinct codes, so ⊥_i ≠ ⊥_j survives the encoding for free.
inline constexpr uint32_t kNullCodeBase = 0x80000000u;

inline constexpr bool IsNullCode(uint32_t code) { return code >= kNullCodeBase; }

/// A term interner: maps each distinct Value to a dense uint32_t code such
/// that code equality coincides exactly with Value::Equals — including the
/// cross-kind numeric identity Int(2) == Double(2.0), which the underlying
/// hash map inherits from ValueHash/Value::operator==.
///
/// Codes are assigned in first-intern order (dense from 0 for values, dense
/// from kNullCodeBase for labelled nulls), so a single-threaded interning
/// pass is deterministic. Thread safety: Intern takes a shared lock on the
/// hit path and upgrades to exclusive only to insert; Decode/TryCode/size
/// are shared-locked, so concurrent readers never block each other. Hot
/// loops should operate on materialized code arrays (core::ColumnarView) and
/// touch the dictionary only to translate query patterns.
class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Code of `v`, interning it if absent.
  uint32_t Intern(const Value& v);

  /// Replaces this dictionary's contents with a snapshot of `other` (the
  /// delta-clone path of core::ColumnarView: a child view inherits the parent
  /// column's code assignments so untouched code arrays stay valid verbatim).
  /// Thread-safe on both sides; no output ever depends on the numeric value
  /// of a code, only on code equality, so inherited codes are free.
  void CopyFrom(const Dictionary& other);

  /// Code of `v` without interning; false when absent.
  bool TryCode(const Value& v, uint32_t* code) const;

  /// The value a code decodes to. Codes come from this dictionary; passing a
  /// foreign code is undefined (guarded by a bounds check returning ⊥_0).
  Value Decode(uint32_t code) const;

  /// Distinct non-null values interned so far.
  size_t num_values() const;
  /// Distinct null labels interned so far.
  size_t num_nulls() const;
  /// num_values() + num_nulls().
  size_t size() const;

 private:
  uint32_t InternLocked(const Value& v);

  mutable std::shared_mutex mutex_;
  std::unordered_map<Value, uint32_t, ValueHash> value_codes_;
  std::unordered_map<uint64_t, uint32_t> null_codes_;  // label -> dense index
  std::vector<Value> values_;                          // decode, value band
  std::vector<uint64_t> null_labels_;                  // decode, null band
};

}  // namespace vadasa

#endif  // VADASA_COMMON_DICTIONARY_H_
