#ifndef VADASA_COMMON_STRING_UTIL_H_
#define VADASA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace vadasa {

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `s` parses fully as an integer / floating literal.
bool LooksLikeInt(std::string_view s);
bool LooksLikeDouble(std::string_view s);

}  // namespace vadasa

#endif  // VADASA_COMMON_STRING_UTIL_H_
