#include "common/dictionary.h"

#include <mutex>

namespace vadasa {

uint32_t Dictionary::Intern(const Value& v) {
  {
    std::shared_lock<std::shared_mutex> read(mutex_);
    if (v.is_null()) {
      auto it = null_codes_.find(v.null_label());
      if (it != null_codes_.end()) return kNullCodeBase + it->second;
    } else {
      auto it = value_codes_.find(v);
      if (it != value_codes_.end()) return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> write(mutex_);
  return InternLocked(v);
}

uint32_t Dictionary::InternLocked(const Value& v) {
  if (v.is_null()) {
    auto [it, inserted] = null_codes_.emplace(
        v.null_label(), static_cast<uint32_t>(null_labels_.size()));
    if (inserted) null_labels_.push_back(v.null_label());
    return kNullCodeBase + it->second;
  }
  auto [it, inserted] = value_codes_.emplace(v, static_cast<uint32_t>(values_.size()));
  if (inserted) values_.push_back(v);
  return it->second;
}

bool Dictionary::TryCode(const Value& v, uint32_t* code) const {
  std::shared_lock<std::shared_mutex> read(mutex_);
  if (v.is_null()) {
    auto it = null_codes_.find(v.null_label());
    if (it == null_codes_.end()) return false;
    *code = kNullCodeBase + it->second;
    return true;
  }
  auto it = value_codes_.find(v);
  if (it == value_codes_.end()) return false;
  *code = it->second;
  return true;
}

Value Dictionary::Decode(uint32_t code) const {
  std::shared_lock<std::shared_mutex> read(mutex_);
  if (IsNullCode(code)) {
    const uint32_t index = code - kNullCodeBase;
    if (index >= null_labels_.size()) return Value();
    return Value::Null(null_labels_[index]);
  }
  if (code >= values_.size()) return Value();
  return values_[code];
}

void Dictionary::CopyFrom(const Dictionary& other) {
  if (this == &other) return;
  std::shared_lock<std::shared_mutex> read(other.mutex_);
  std::unique_lock<std::shared_mutex> write(mutex_);
  value_codes_ = other.value_codes_;
  null_codes_ = other.null_codes_;
  values_ = other.values_;
  null_labels_ = other.null_labels_;
}

size_t Dictionary::num_values() const {
  std::shared_lock<std::shared_mutex> read(mutex_);
  return values_.size();
}

size_t Dictionary::num_nulls() const {
  std::shared_lock<std::shared_mutex> read(mutex_);
  return null_labels_.size();
}

size_t Dictionary::size() const {
  std::shared_lock<std::shared_mutex> read(mutex_);
  return values_.size() + null_labels_.size();
}

}  // namespace vadasa
