#ifndef VADASA_COMMON_RESULT_H_
#define VADASA_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace vadasa {

/// A value-or-error holder in the Arrow idiom: either a T or a non-OK Status.
///
/// Accessing the value of a failed Result is a programming error (asserted in
/// debug builds). Use `ok()` / `status()` before dereferencing, or the
/// VADASA_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Intentionally implicit
  /// so functions can `return Status::...;`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` if this result failed.
  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

#define VADASA_CONCAT_IMPL(a, b) a##b
#define VADASA_CONCAT(a, b) VADASA_CONCAT_IMPL(a, b)

/// `VADASA_ASSIGN_OR_RETURN(auto x, MakeX());` — unwraps a Result or
/// propagates its error status to the caller.
#define VADASA_ASSIGN_OR_RETURN(decl, expr)                        \
  auto VADASA_CONCAT(_res_, __LINE__) = (expr);                    \
  if (!VADASA_CONCAT(_res_, __LINE__).ok())                        \
    return VADASA_CONCAT(_res_, __LINE__).status();                \
  decl = std::move(VADASA_CONCAT(_res_, __LINE__)).value()

}  // namespace vadasa

#endif  // VADASA_COMMON_RESULT_H_
