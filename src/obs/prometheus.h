#ifndef VADASA_OBS_PROMETHEUS_H_
#define VADASA_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

/// Prometheus text-exposition (version 0.0.4) encoding of a MetricsRegistry.
///
/// Every metric is prefixed `vadasa_` and sanitized to the Prometheus name
/// alphabet ([a-zA-Z0-9_:], dots become underscores). Counters emit as
/// `# TYPE ... counter`, gauges as `gauge`, histograms as Prometheus
/// summaries: `<name>{quantile="0.5|0.9|0.99"}`, `<name>_sum`,
/// `<name>_count`, plus `<name>_min`/`<name>_max` gauges.
///
/// The per-op serve latency family is special-cased: metrics named
/// `serve.op.<verb>.latency_ms` fold into one
/// `vadasa_serve_op_latency_ms{op="<verb>"}` summary family with a single
/// `# TYPE` header, which is what a Prometheus scrape expects for a labelled
/// family.

namespace vadasa::obs {

/// `vadasa_` + `name` with every character outside [a-zA-Z0-9_:] replaced by
/// '_'. Exposed for tests.
std::string PrometheusMetricName(const std::string& name);

/// Serializes `registry` as Prometheus text exposition. Deterministic: output
/// order is sorted by metric name within each kind.
std::string ToPrometheusText(const MetricsRegistry& registry);

/// Writes ToPrometheusText(registry) to `path`. Returns false on I/O failure.
bool WritePrometheus(const MetricsRegistry& registry, const std::string& path);

}  // namespace vadasa::obs

#endif  // VADASA_OBS_PROMETHEUS_H_
