#ifndef VADASA_OBS_TRACE_H_
#define VADASA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

/// Low-overhead scoped tracing for the reasoning engine and the anonymization
/// cycle.
///
/// Usage: brace a region with `obs::Span span("cycle.risk_eval");`. When
/// tracing is off (the default) a span costs one relaxed atomic load; when on
/// it costs two steady_clock reads and an append to a thread-local buffer.
/// Span context crosses ThreadPool::ParallelFor: shard work run on worker
/// threads is parented to the span open on the submitting thread, so a
/// Perfetto view attributes parallel sections to the phase that spawned them.
///
/// `VADASA_DISABLE_OBS` compiles the tracer (and the hot-path metric macros
/// below) out entirely; spans become empty objects the optimizer deletes.
/// Instrumentation must never alter computation: a run with tracing enabled
/// is bit-identical to a disabled or compiled-out run (test-enforced).

namespace vadasa::obs {

/// One completed span, timestamps in nanoseconds on the tracer's
/// steady-clock timeline.
struct SpanEvent {
  const char* name = nullptr;  ///< Static string (span sites use literals).
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root.
  uint64_t trace = 0;   ///< Request trace id the span ran under (0 = none).
  uint32_t tid = 0;     ///< Stable per-thread index (0 = first seen thread).
  int64_t start_ns = 0;
  int64_t end_ns = 0;
};

// --- Request trace ids ------------------------------------------------------
//
// A TraceId is a 64-bit token minted once per protocol request (vadasa_serve
// mints one per request line) and installed on the handling thread with
// ScopedTraceId. Every Span opened while a trace id is installed records it,
// and ThreadPool::ParallelFor carries it to worker shards alongside the span
// context — so one Chrome-trace export groups queue-wait, warmup and cycle
// phases by request. Trace ids never alter computation and stay available in
// VADASA_DISABLE_OBS builds (the protocol still echoes them); only the span
// recording compiles out.

/// Mints a fresh non-zero trace id. The sequence is seeded from
/// VADASA_TRACE_SEED when set (deterministic under test), else from the
/// steady clock at first use.
uint64_t MintTraceId();

/// Re-seeds the mint sequence (tests). Subsequent MintTraceId calls replay
/// the same ids for the same seed.
void SeedTraceIds(uint64_t seed);

/// The trace id installed on this thread; 0 when none.
uint64_t CurrentTraceId();

/// 16 lowercase hex digits, the wire spelling of a trace id.
std::string TraceIdToHex(uint64_t id);
/// Parses TraceIdToHex output; 0 on malformed input.
uint64_t TraceIdFromHex(const std::string& hex);

/// Installs `id` as this thread's current trace id for the scope's lifetime.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t id);
  ~ScopedTraceId();

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t previous_ = 0;
};

#ifndef VADASA_DISABLE_OBS

/// Is tracing currently recording? One relaxed load; callers may use it to
/// gate timing work that only feeds the trace.
bool TracingEnabled();

/// Clears recorded spans and starts recording. Registers the ParallelFor
/// context hooks on first use.
void StartTracing();

/// Stops recording (spans stay buffered for export).
void StopTracing();

/// All spans completed since StartTracing, in per-thread completion order.
std::vector<SpanEvent> CollectSpans();

/// Serializes the recorded spans as a Chrome trace_event JSON document
/// (`{"traceEvents": [...]}`), loadable in chrome://tracing and Perfetto.
/// Timestamps are microseconds relative to StartTracing.
std::string ToChromeTraceJson();

/// Writes ToChromeTraceJson() to `path`. Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// Records an already-timed span (start/end in steady_clock nanoseconds, the
/// tracer's timeline) on the calling thread, parented to the thread's open
/// span and stamped with its trace id. Used for phases measured outside an
/// RAII scope — e.g. the scheduler's queue-wait, whose endpoints live on
/// different threads. No-op when tracing is off.
void EmitSpan(const char* name, int64_t start_ns, int64_t end_ns);

/// RAII scoped span. Must be destroyed on the thread that created it
/// (automatic for stack objects), which guarantees per-thread stack nesting.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t trace_ = 0;
  int64_t start_ns_ = 0;
};

#else  // VADASA_DISABLE_OBS

inline bool TracingEnabled() { return false; }
inline void StartTracing() {}
inline void StopTracing() {}
inline std::vector<SpanEvent> CollectSpans() { return {}; }
inline std::string ToChromeTraceJson() { return "{\"traceEvents\": []}\n"; }
bool WriteChromeTrace(const std::string& path);
inline void EmitSpan(const char*, int64_t, int64_t) {}

class Span {
 public:
  explicit Span(const char*) {}
};

#endif  // VADASA_DISABLE_OBS

/// `--trace=PATH` / `--metrics=PATH` / `--prom=PATH` handling shared by the
/// CLI and the benchmark binaries: ExtractTraceArgs strips the flags from
/// argv (so google-benchmark and positional parsing never see them) and
/// ExportRequested writes the requested files after the run.
struct TraceArgs {
  std::string trace_path;    ///< Chrome trace_event output, empty = off.
  std::string metrics_path;  ///< Flat metrics JSON output, empty = off.
  std::string prom_path;     ///< Prometheus text exposition, empty = off.
  bool tracing_requested() const { return !trace_path.empty(); }
  bool any() const {
    return !trace_path.empty() || !metrics_path.empty() || !prom_path.empty();
  }
};

TraceArgs ExtractTraceArgs(int* argc, char** argv);

/// Writes the trace and/or metrics files named in `args` (no-op for empty
/// paths). Returns false if any write failed.
bool ExportRequested(const TraceArgs& args);

}  // namespace vadasa::obs

/// Hot-path global counter: resolves the handle once per call site, then
/// pays one relaxed atomic add. Compiles out under VADASA_DISABLE_OBS.
#ifndef VADASA_DISABLE_OBS
#define VADASA_METRIC_COUNT(metric_name, delta)                      \
  do {                                                               \
    static ::vadasa::obs::Counter* vadasa_metric_counter_ =          \
        ::vadasa::obs::MetricsRegistry::Global().counter(metric_name); \
    vadasa_metric_counter_->Add(delta);                              \
  } while (0)
#else
#define VADASA_METRIC_COUNT(metric_name, delta) \
  do {                                          \
  } while (0)
#endif

#endif  // VADASA_OBS_TRACE_H_
