#ifndef VADASA_OBS_TRACE_H_
#define VADASA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

/// Low-overhead scoped tracing for the reasoning engine and the anonymization
/// cycle.
///
/// Usage: brace a region with `obs::Span span("cycle.risk_eval");`. When
/// tracing is off (the default) a span costs one relaxed atomic load; when on
/// it costs two steady_clock reads and an append to a thread-local buffer.
/// Span context crosses ThreadPool::ParallelFor: shard work run on worker
/// threads is parented to the span open on the submitting thread, so a
/// Perfetto view attributes parallel sections to the phase that spawned them.
///
/// `VADASA_DISABLE_OBS` compiles the tracer (and the hot-path metric macros
/// below) out entirely; spans become empty objects the optimizer deletes.
/// Instrumentation must never alter computation: a run with tracing enabled
/// is bit-identical to a disabled or compiled-out run (test-enforced).

namespace vadasa::obs {

/// One completed span, timestamps in nanoseconds on the tracer's
/// steady-clock timeline.
struct SpanEvent {
  const char* name = nullptr;  ///< Static string (span sites use literals).
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root.
  uint32_t tid = 0;     ///< Stable per-thread index (0 = first seen thread).
  int64_t start_ns = 0;
  int64_t end_ns = 0;
};

#ifndef VADASA_DISABLE_OBS

/// Is tracing currently recording? One relaxed load; callers may use it to
/// gate timing work that only feeds the trace.
bool TracingEnabled();

/// Clears recorded spans and starts recording. Registers the ParallelFor
/// context hooks on first use.
void StartTracing();

/// Stops recording (spans stay buffered for export).
void StopTracing();

/// All spans completed since StartTracing, in per-thread completion order.
std::vector<SpanEvent> CollectSpans();

/// Serializes the recorded spans as a Chrome trace_event JSON document
/// (`{"traceEvents": [...]}`), loadable in chrome://tracing and Perfetto.
/// Timestamps are microseconds relative to StartTracing.
std::string ToChromeTraceJson();

/// Writes ToChromeTraceJson() to `path`. Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// RAII scoped span. Must be destroyed on the thread that created it
/// (automatic for stack objects), which guarantees per-thread stack nesting.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  int64_t start_ns_ = 0;
};

#else  // VADASA_DISABLE_OBS

inline bool TracingEnabled() { return false; }
inline void StartTracing() {}
inline void StopTracing() {}
inline std::vector<SpanEvent> CollectSpans() { return {}; }
inline std::string ToChromeTraceJson() { return "{\"traceEvents\": []}\n"; }
bool WriteChromeTrace(const std::string& path);

class Span {
 public:
  explicit Span(const char*) {}
};

#endif  // VADASA_DISABLE_OBS

/// `--trace=PATH` / `--metrics=PATH` handling shared by the CLI and the
/// benchmark binaries: ExtractTraceArgs strips the flags from argv (so
/// google-benchmark and positional parsing never see them) and
/// ExportRequested writes the requested files after the run.
struct TraceArgs {
  std::string trace_path;    ///< Chrome trace_event output, empty = off.
  std::string metrics_path;  ///< Flat metrics JSON output, empty = off.
  bool tracing_requested() const { return !trace_path.empty(); }
  bool any() const { return !trace_path.empty() || !metrics_path.empty(); }
};

TraceArgs ExtractTraceArgs(int* argc, char** argv);

/// Writes the trace and/or metrics files named in `args` (no-op for empty
/// paths). Returns false if any write failed.
bool ExportRequested(const TraceArgs& args);

}  // namespace vadasa::obs

/// Hot-path global counter: resolves the handle once per call site, then
/// pays one relaxed atomic add. Compiles out under VADASA_DISABLE_OBS.
#ifndef VADASA_DISABLE_OBS
#define VADASA_METRIC_COUNT(metric_name, delta)                      \
  do {                                                               \
    static ::vadasa::obs::Counter* vadasa_metric_counter_ =          \
        ::vadasa::obs::MetricsRegistry::Global().counter(metric_name); \
    vadasa_metric_counter_->Add(delta);                              \
  } while (0)
#else
#define VADASA_METRIC_COUNT(metric_name, delta) \
  do {                                          \
  } while (0)
#endif

#endif  // VADASA_OBS_TRACE_H_
