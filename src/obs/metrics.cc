#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace vadasa::obs {

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::NextRandomLocked() {
  // xorshift64*; state is never 0 (seeded non-zero, bijective updates).
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545f4914f6cdd1dULL;
}

void Histogram::RetainLocked(double v) {
  if (samples_.size() < kMaxRetainedSamples) {
    samples_.push_back(v);
    return;
  }
  // Algorithm R: the count_-th sample replaces a random retained slot with
  // probability cap/count_, keeping the reservoir a uniform sample.
  const uint64_t slot = NextRandomLocked() % count_;
  if (slot < kMaxRetainedSamples) samples_[slot] = v;
}

void Histogram::Record(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  RetainLocked(v);
}

void Histogram::Merge(const Histogram& other) {
  // Copy under the source lock first; never hold both locks at once.
  std::vector<double> src_samples;
  size_t src_count;
  double src_sum, src_min, src_max;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    src_samples = other.samples_;
    src_count = other.count_;
    src_sum = other.sum_;
    src_min = other.min_;
    src_max = other.max_;
  }
  if (src_count == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = src_min;
    max_ = src_max;
  } else {
    min_ = std::min(min_, src_min);
    max_ = std::max(max_, src_max);
  }
  sum_ += src_sum;
  // Feed the source's retained samples through the same reservoir step the
  // direct Record path uses; count_ advances per sample so replacement
  // probabilities stay correct.
  for (const double v : src_samples) {
    ++count_;
    RetainLocked(v);
  }
  // Source samples past its own cap were dropped there; the aggregate count
  // still reflects them.
  count_ += src_count - src_samples.size();
}

size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p == 0.0) return sorted.front();
  // Nearest rank: rank = ceil(p/100 * N), 1-based.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank, sorted.size()) - 1];
}

std::vector<double> Histogram::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  rng_state_ = 0x9e3779b97f4a7c15ULL;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    (void)name;
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h->Reset();
  }
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 7);
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name + ".count", static_cast<double>(h->count()));
    out.emplace_back(name + ".sum", h->sum());
    out.emplace_back(name + ".min", h->min());
    out.emplace_back(name + ".max", h->max());
    out.emplace_back(name + ".p50", h->Percentile(50.0));
    out.emplace_back(name + ".p90", h->Percentile(90.0));
    out.emplace_back(name + ".p99", h->Percentile(99.0));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues() const {
  std::vector<std::pair<std::string, double>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, MetricsRegistry::HistogramStats>>
MetricsRegistry::HistogramValues() const {
  std::vector<std::pair<std::string, HistogramStats>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramStats stats;
    stats.count = h->count();
    stats.sum = h->sum();
    stats.min = h->min();
    stats.max = h->max();
    stats.p50 = h->Percentile(50.0);
    stats.p90 = h->Percentile(90.0);
    stats.p99 = h->Percentile(99.0);
    out.emplace_back(name, stats);
  }
  return out;
}

size_t MetricsRegistry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::ToJson() const {
  const auto snapshot = Snapshot();
  std::string out = "{";
  char buf[32];
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.12g", snapshot[i].second);
    out += "\"" + snapshot[i].first + "\": " + buf;
  }
  out += "}";
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

void MetricsRegistry::MergeInto(MetricsRegistry* dst, const std::string& prefix) const {
  // Collect source entries first; dst->counter() locks dst's mutex and the
  // global registry may be the destination of many local registries.
  std::vector<std::pair<std::string, uint64_t>> counter_vals;
  std::vector<std::pair<std::string, double>> gauge_vals;
  std::vector<const Histogram*> hist_ptrs;
  std::vector<std::string> hist_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counter_vals.emplace_back(name, c->value());
    for (const auto& [name, g] : gauges_) gauge_vals.emplace_back(name, g->value());
    for (const auto& [name, h] : histograms_) {
      hist_names.push_back(name);
      hist_ptrs.push_back(h.get());
    }
  }
  for (const auto& [name, v] : counter_vals) dst->counter(prefix + name)->Add(v);
  for (const auto& [name, v] : gauge_vals) dst->gauge(prefix + name)->Set(v);
  for (size_t i = 0; i < hist_ptrs.size(); ++i) {
    dst->histogram(prefix + hist_names[i])->Merge(*hist_ptrs[i]);
  }
}

}  // namespace vadasa::obs
