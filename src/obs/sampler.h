#ifndef VADASA_OBS_SAMPLER_H_
#define VADASA_OBS_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

/// Continuous process telemetry: a background thread snapshots a handful of
/// load gauges at a fixed interval into a bounded ring buffer, giving every
/// export (bench --json, the serve `telemetry` verb, vadasa_top) a time
/// series instead of a single end-of-run value.

namespace vadasa::obs {

/// One periodic snapshot. Gauge columns read the global MetricsRegistry, so
/// the sampler sees whatever the serve scheduler (or anything else)
/// publishes without a direct dependency.
struct TelemetrySample {
  int64_t t_ms = 0;       ///< Milliseconds since Start().
  double queue_depth = 0;  ///< Gauge "serve.queue_depth".
  double running = 0;      ///< Gauge "serve.running".
  double workers = 0;      ///< Gauge "serve.workers".
  double rss_mb = 0;       ///< Resident set size from /proc/self/statm.
  double metric_count = 0;  ///< MetricsRegistry::Global().MetricCount().
};

/// A bounded-ring background sampler. Start() spawns the thread; Stop()
/// joins it. When the ring fills, the oldest samples are overwritten — at
/// the default 100 ms x 600 slots the window is the last minute.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(size_t capacity = 600);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Process-wide sampler used by vadasa_serve and the bench JSON writer.
  static TelemetrySampler& Global();

  /// Starts the background thread at `interval_ms` (clamped to >= 1). No-op
  /// if already running.
  void Start(int64_t interval_ms);
  /// Stops and joins the thread; recorded samples stay readable.
  void Stop();
  bool running() const;

  /// Takes one snapshot immediately on the calling thread (test hook; also
  /// used by Start for a t=0 sample).
  void SampleOnce();

  void Clear();

  /// Samples in ring order, oldest first.
  std::vector<TelemetrySample> Samples() const;

  /// The series as a columnar JSON object:
  /// `{"interval_ms": I, "count": N, "t_ms": [...], "queue_depth": [...],
  ///   "running": [...], "workers": [...], "rss_mb": [...],
  ///   "metric_count": [...]}`.
  std::string TimeSeriesJson() const;

  /// Resident set size of this process in MiB (0 where /proc is missing).
  static double CurrentRssMb();

 private:
  void Loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
  int64_t interval_ms_ = 100;
  int64_t start_ns_ = 0;
  size_t capacity_;
  size_t head_ = 0;  ///< Next write slot once the ring is full.
  std::vector<TelemetrySample> ring_;
};

}  // namespace vadasa::obs

#endif  // VADASA_OBS_SAMPLER_H_
