#include "obs/request_log.h"

#include <cstdio>

#include "common/json.h"
#include "obs/trace.h"

namespace vadasa::obs {

RequestLog::RequestLog(const std::string& path, double threshold_ms)
    : out_(path, std::ios::app), threshold_ms_(threshold_ms) {
  ok_ = static_cast<bool>(out_);
}

bool RequestLog::Record(const RequestLogEntry& entry, bool force) {
  if (!ok_) return false;
  if (!force && entry.queue_ms + entry.run_ms < threshold_ms_) return false;
  char num[64];
  std::string line = "{\"trace_id\": \"" + TraceIdToHex(entry.trace_id) + "\"";
  line += ", \"op\": " + JsonQuote(entry.op);
  line += ", \"dataset\": " + JsonQuote(entry.dataset);
  std::snprintf(num, sizeof(num), "%.3f", entry.queue_ms);
  line += std::string(", \"queue_ms\": ") + num;
  std::snprintf(num, sizeof(num), "%.3f", entry.run_ms);
  line += std::string(", \"run_ms\": ") + num;
  line += ", \"outcome\": " + JsonQuote(entry.outcome) + "}\n";
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
  out_.flush();
  ++lines_written_;
  return true;
}

uint64_t RequestLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_written_;
}

}  // namespace vadasa::obs
