#include "obs/prometheus.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

namespace vadasa::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Splits a `serve.op.<verb>.latency_ms` histogram name into its verb, or
/// returns empty when the name is not part of the labelled family.
std::string ServeOpVerb(const std::string& name) {
  const std::string prefix = "serve.op.";
  const std::string suffix = ".latency_ms";
  if (name.size() <= prefix.size() + suffix.size()) return "";
  if (name.rfind(prefix, 0) != 0) return "";
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return "";
  }
  return name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
}

void AppendSummary(const std::string& family, const std::string& labels,
                   const MetricsRegistry::HistogramStats& stats, std::string* out) {
  const std::string quantile_open =
      labels.empty() ? "{quantile=\"" : "{" + labels + ",quantile=\"";
  *out += family + quantile_open + "0.5\"} " + FormatDouble(stats.p50) + "\n";
  *out += family + quantile_open + "0.9\"} " + FormatDouble(stats.p90) + "\n";
  *out += family + quantile_open + "0.99\"} " + FormatDouble(stats.p99) + "\n";
  const std::string label_block = labels.empty() ? "" : "{" + labels + "}";
  *out += family + "_sum" + label_block + " " + FormatDouble(stats.sum) + "\n";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(stats.count));
  *out += family + "_count" + label_block + " " + buf + "\n";
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "vadasa_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.CounterValues()) {
    const std::string prom = PrometheusMetricName(name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
    out += "# TYPE " + prom + " counter\n" + prom + " " + buf + "\n";
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " gauge\n" + prom + " " + FormatDouble(value) + "\n";
  }

  // Histograms: the per-op serve latency metrics fold into one labelled
  // summary family; everything else becomes its own summary.
  std::vector<std::pair<std::string, MetricsRegistry::HistogramStats>> serve_ops;
  std::vector<std::pair<std::string, MetricsRegistry::HistogramStats>> plain;
  for (auto& [name, stats] : registry.HistogramValues()) {
    const std::string verb = ServeOpVerb(name);
    if (!verb.empty()) {
      serve_ops.emplace_back(verb, stats);
    } else {
      plain.emplace_back(name, stats);
    }
  }
  for (const auto& [name, stats] : plain) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " summary\n";
    AppendSummary(prom, "", stats, &out);
    out += "# TYPE " + prom + "_min gauge\n" + prom + "_min " +
           FormatDouble(stats.min) + "\n";
    out += "# TYPE " + prom + "_max gauge\n" + prom + "_max " +
           FormatDouble(stats.max) + "\n";
  }
  if (!serve_ops.empty()) {
    const std::string family = "vadasa_serve_op_latency_ms";
    out += "# TYPE " + family + " summary\n";
    for (const auto& [verb, stats] : serve_ops) {
      AppendSummary(family, "op=\"" + verb + "\"", stats, &out);
    }
    out += "# TYPE " + family + "_min gauge\n";
    for (const auto& [verb, stats] : serve_ops) {
      out += family + "_min{op=\"" + verb + "\"} " + FormatDouble(stats.min) + "\n";
    }
    out += "# TYPE " + family + "_max gauge\n";
    for (const auto& [verb, stats] : serve_ops) {
      out += family + "_max{op=\"" + verb + "\"} " + FormatDouble(stats.max) + "\n";
    }
  }
  return out;
}

bool WritePrometheus(const MetricsRegistry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << ToPrometheusText(registry);
  return static_cast<bool>(out);
}

}  // namespace vadasa::obs
