#ifndef VADASA_OBS_REQUEST_LOG_H_
#define VADASA_OBS_REQUEST_LOG_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

/// Structured slow-request logging: requests whose total latency crosses a
/// threshold are appended as one NDJSON line each, giving operators a
/// greppable record (trace_id joins the log line to the Chrome-trace spans
/// and the protocol response for the same request).

namespace vadasa::obs {

/// One loggable request outcome.
struct RequestLogEntry {
  uint64_t trace_id = 0;
  std::string op;       ///< Protocol verb or job kind.
  std::string dataset;  ///< Dataset name, empty when not applicable.
  double queue_ms = 0;  ///< Time spent queued before execution.
  double run_ms = 0;    ///< Execution time.
  std::string outcome;  ///< "ok", "error", "cancelled", ...
};

/// A threshold-gated NDJSON writer. Record() is cheap for fast requests (one
/// comparison); slow ones serialize under a mutex and flush per line so a
/// crashed process keeps its log. threshold_ms <= 0 logs everything.
class RequestLog {
 public:
  /// Opens `path` for append. ok() reports whether the stream opened.
  RequestLog(const std::string& path, double threshold_ms);

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  bool ok() const { return ok_; }
  double threshold_ms() const { return threshold_ms_; }

  /// Writes `entry` if queue_ms + run_ms >= threshold_ms. Returns true when
  /// a line was written. `force` bypasses the threshold — degraded-mode
  /// events (watchdog "overdue" flags, drain cancellations) always land in
  /// the log regardless of how fast the request was so far.
  bool Record(const RequestLogEntry& entry, bool force = false);

  uint64_t lines_written() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream out_;
  bool ok_ = false;
  double threshold_ms_ = 0;
  uint64_t lines_written_ = 0;
};

}  // namespace vadasa::obs

#endif  // VADASA_OBS_REQUEST_LOG_H_
