#ifndef VADASA_OBS_METRICS_H_
#define VADASA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vadasa::obs {

/// A monotonically increasing counter. Relaxed atomics: counters are
/// statistics, not synchronization, and increments from ParallelFor shards
/// are folded by the final read.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-value gauge (e.g. "total_seconds", "num_patterns").
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A sample-recording histogram with exact nearest-rank percentiles under a
/// bounded memory cap.
///
/// The first kMaxRetainedSamples samples are retained verbatim, so
/// percentiles are exact below the cap (test-pinned). Past the cap the
/// retained set becomes a uniform reservoir (Algorithm R with a fixed-seed
/// per-histogram generator, so identical record sequences retain identical
/// samples): count/sum/min/max stay exact forever, percentiles become an
/// unbiased estimate over 2^16 samples — and a serve process that records
/// millions of request latencies holds at most 512 KiB per histogram.
class Histogram {
 public:
  static constexpr size_t kMaxRetainedSamples = 1 << 16;

  void Record(double v);
  /// Folds another histogram into this one (registry merging).
  void Merge(const Histogram& other);

  size_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty.
  double max() const;  ///< 0 when empty.

  /// Nearest-rank percentile over the retained samples: the smallest
  /// retained value v such that at least p% of samples are <= v. Exact while
  /// count() <= kMaxRetainedSamples. p is clamped to [0, 100]; returns 0
  /// when empty.
  double Percentile(double p) const;

  std::vector<double> samples() const;
  void Reset();

 private:
  /// Reservoir retention step for one sample; caller holds mutex_ and has
  /// already updated count_/sum_/min_/max_.
  void RetainLocked(double v);
  uint64_t NextRandomLocked();

  mutable std::mutex mutex_;
  std::vector<double> samples_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// xorshift64* state for the reservoir; fixed seed => deterministic.
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
};

/// A named collection of counters, gauges and histograms.
///
/// Two usage patterns:
///  - `MetricsRegistry::Global()` accumulates process-wide telemetry
///    (group-index rebuilds, risk-cache hits, engine rounds) and is what the
///    exporters serialize.
///  - Local instances scope one run: the anonymization cycle meters each Run
///    into a local registry, derives `CycleStats` from it, and folds the
///    result into the global registry under a "cycle." prefix.
///
/// Metric handles returned by counter()/gauge()/histogram() are stable for
/// the registry's lifetime; the lookup itself takes a lock, so hot paths
/// should capture the handle once (see VADASA_METRIC_* in trace.h).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Zeroes every registered metric (handles stay valid).
  void Reset();

  /// Flat name->value view, sorted by name. Histograms expand into
  /// `<name>.count/.sum/.min/.max/.p50/.p90/.p99`.
  std::vector<std::pair<std::string, double>> Snapshot() const;

  /// Typed views for encoders that must distinguish metric kinds (the
  /// Prometheus exposition): name-sorted values per kind.
  struct HistogramStats {
    size_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramStats>> HistogramValues() const;

  /// Number of registered metrics (counters + gauges + histograms) — the
  /// cheap cardinality probe the telemetry sampler records.
  size_t MetricCount() const;

  /// The flat snapshot as a single JSON object, `{"name": value, ...}`.
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

  /// Folds this registry into `dst`, prefixing every metric name: counters
  /// add, gauges overwrite, histograms merge.
  void MergeInto(MetricsRegistry* dst, const std::string& prefix) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace vadasa::obs

#endif  // VADASA_OBS_METRICS_H_
