#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/thread_pool.h"
#include "obs/prometheus.h"

namespace vadasa::obs {

// --- Trace ids (available in every build, including VADASA_DISABLE_OBS) ----

namespace {

/// The trace id installed on this thread (ScopedTraceId); 0 = none.
thread_local uint64_t t_current_trace = 0;

/// Finalizer of splitmix64 — a cheap bijective mixer, so sequential seeds
/// yield well-spread ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<uint64_t>& TraceIdState() {
  static std::atomic<uint64_t>* state = [] {
    uint64_t seed = 0;
    if (const char* env = std::getenv("VADASA_TRACE_SEED")) {
      char* end = nullptr;
      seed = std::strtoull(env, &end, 10);
      if (end == env) seed = 0;
    } else {
      seed = static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count());
    }
    return new std::atomic<uint64_t>(seed);
  }();
  return *state;
}

}  // namespace

uint64_t MintTraceId() {
  uint64_t id = 0;
  while (id == 0) {
    id = Mix64(TraceIdState().fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

void SeedTraceIds(uint64_t seed) {
  TraceIdState().store(seed, std::memory_order_relaxed);
}

uint64_t CurrentTraceId() { return t_current_trace; }

std::string TraceIdToHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

uint64_t TraceIdFromHex(const std::string& hex) {
  if (hex.size() != 16) return 0;
  uint64_t id = 0;
  for (const char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
    else return 0;
    id = (id << 4) | digit;
  }
  return id;
}

ScopedTraceId::ScopedTraceId(uint64_t id) : previous_(t_current_trace) {
  t_current_trace = id;
}

ScopedTraceId::~ScopedTraceId() { t_current_trace = previous_; }

#ifndef VADASA_DISABLE_OBS

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread span buffer. Owned jointly by the thread (thread_local
/// shared_ptr) and the global registry, so spans survive thread exit until
/// export. The mutex is uncontended except during CollectSpans.
struct ThreadBuffer {
  uint32_t tid = 0;
  std::mutex mutex;
  std::vector<SpanEvent> events;
};

struct TracerState {
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> next_span_id{1};
  std::atomic<int64_t> epoch_ns{0};
  std::atomic<uint32_t> next_tid{0};
  std::mutex registry_mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

TracerState& State() {
  static TracerState* state = new TracerState();
  return *state;
}

/// The innermost open span on this thread; parent of new spans and the
/// context token ParallelFor carries to its workers.
thread_local uint64_t t_current_span = 0;

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TracerState& st = State();
    b->tid = st.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(st.registry_mutex);
    st.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

// --- ParallelFor context propagation ---------------------------------------

ThreadPool::TaskContext CaptureContext() {
  return {t_current_span, t_current_trace};
}

ThreadPool::TaskContext InstallContext(ThreadPool::TaskContext context) {
  const ThreadPool::TaskContext previous{t_current_span, t_current_trace};
  t_current_span = context.span;
  t_current_trace = context.trace;
  return previous;
}

void RestoreContext(ThreadPool::TaskContext previous) {
  t_current_span = previous.span;
  t_current_trace = previous.trace;
}

void RegisterPoolHooksOnce() {
  static const bool registered = [] {
    ThreadPool::SetContextHooks(&CaptureContext, &InstallContext, &RestoreContext);
    return true;
  }();
  (void)registered;
}

}  // namespace

bool TracingEnabled() { return State().enabled.load(std::memory_order_relaxed); }

void StartTracing() {
  RegisterPoolHooksOnce();
  TracerState& st = State();
  {
    std::lock_guard<std::mutex> lock(st.registry_mutex);
    for (const auto& buffer : st.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
  }
  st.next_span_id.store(1, std::memory_order_relaxed);
  st.epoch_ns.store(NowNs(), std::memory_order_relaxed);
  st.enabled.store(true, std::memory_order_release);
}

void StopTracing() { State().enabled.store(false, std::memory_order_release); }

std::vector<SpanEvent> CollectSpans() {
  TracerState& st = State();
  std::vector<SpanEvent> out;
  std::lock_guard<std::mutex> lock(st.registry_mutex);
  for (const auto& buffer : st.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

Span::Span(const char* name) {
  if (!TracingEnabled()) return;
  name_ = name;
  id_ = State().next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  trace_ = t_current_trace;
  t_current_span = id_;
  start_ns_ = NowNs();
}

Span::~Span() {
  if (id_ == 0) return;
  const int64_t end_ns = NowNs();
  t_current_span = parent_;
  // Record even if tracing stopped mid-span: a started span is completed so
  // the per-thread stream stays well-formed.
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      SpanEvent{name_, id_, parent_, trace_, buffer.tid, start_ns_, end_ns});
}

void EmitSpan(const char* name, int64_t start_ns, int64_t end_ns) {
  if (!TracingEnabled()) return;
  const uint64_t id = State().next_span_id.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(SpanEvent{name, id, t_current_span, t_current_trace,
                                    buffer.tid, start_ns, end_ns});
}

std::string ToChromeTraceJson() {
  const std::vector<SpanEvent> spans = CollectSpans();
  const int64_t epoch = State().epoch_ns.load(std::memory_order_relaxed);
  std::string out = "{\"traceEvents\": [";
  char buf[320];
  bool first = true;
  // Thread-name metadata so Perfetto labels the pool lanes.
  uint32_t max_tid = 0;
  for (const SpanEvent& s : spans) max_tid = std::max(max_tid, s.tid);
  for (uint32_t tid = 0; tid <= max_tid && !spans.empty(); ++tid) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                  "\"tid\": %u, \"args\": {\"name\": \"%s-%u\"}}",
                  first ? "\n  " : ",\n  ", tid, tid == 0 ? "main" : "worker", tid);
    out += buf;
    first = false;
  }
  for (const SpanEvent& s : spans) {
    // The trace id travels as a hex string: 64-bit ids do not survive the
    // JSON double round-trip as numbers.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %.3f, \"dur\": %.3f, "
                  "\"args\": {\"id\": %llu, \"parent\": %llu, \"trace\": \"%s\"}}",
                  first ? "\n  " : ",\n  ", s.name, s.tid,
                  static_cast<double>(s.start_ns - epoch) / 1000.0,
                  static_cast<double>(s.end_ns - s.start_ns) / 1000.0,
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  TraceIdToHex(s.trace).c_str());
    out += buf;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << ToChromeTraceJson();
  return static_cast<bool>(out);
}

#else  // VADASA_DISABLE_OBS

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"traceEvents\": []}\n";
  return static_cast<bool>(out);
}

#endif  // VADASA_DISABLE_OBS

TraceArgs ExtractTraceArgs(int* argc, char** argv) {
  TraceArgs args;
  const std::string trace_prefix = "--trace=";
  const std::string metrics_prefix = "--metrics=";
  const std::string prom_prefix = "--prom=";
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(trace_prefix, 0) == 0) {
      args.trace_path = arg.substr(trace_prefix.size());
    } else if (arg.rfind(metrics_prefix, 0) == 0) {
      args.metrics_path = arg.substr(metrics_prefix.size());
    } else if (arg.rfind(prom_prefix, 0) == 0) {
      args.prom_path = arg.substr(prom_prefix.size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return args;
}

bool ExportRequested(const TraceArgs& args) {
  bool ok = true;
  if (!args.trace_path.empty()) {
    StopTracing();
    ok = WriteChromeTrace(args.trace_path) && ok;
  }
  if (!args.metrics_path.empty()) {
    ok = MetricsRegistry::Global().WriteJson(args.metrics_path) && ok;
  }
  if (!args.prom_path.empty()) {
    ok = WritePrometheus(MetricsRegistry::Global(), args.prom_path) && ok;
  }
  return ok;
}

}  // namespace vadasa::obs
