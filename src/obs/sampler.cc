#include "obs/sampler.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>

namespace vadasa::obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendColumn(const char* name, const std::vector<TelemetrySample>& samples,
                  double (*get)(const TelemetrySample&), std::string* out) {
  *out += "\"";
  *out += name;
  *out += "\": [";
  char buf[32];
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) *out += ", ";
    std::snprintf(buf, sizeof(buf), "%.12g", get(samples[i]));
    *out += buf;
  }
  *out += "]";
}

}  // namespace

TelemetrySampler::TelemetrySampler(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

TelemetrySampler& TelemetrySampler::Global() {
  static TelemetrySampler* sampler = new TelemetrySampler();
  return *sampler;
}

double TelemetrySampler::CurrentRssMb() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0.0;
  long total_pages = 0, resident_pages = 0;
  statm >> total_pages >> resident_pages;
  if (!statm) return 0.0;
  const long page_size = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident_pages) * static_cast<double>(page_size) /
         (1024.0 * 1024.0);
}

void TelemetrySampler::SampleOnce() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  TelemetrySample s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t base = start_ns_ == 0 ? NowNs() : start_ns_;
    if (start_ns_ == 0) start_ns_ = base;
    s.t_ms = (NowNs() - base) / 1000000;
  }
  s.queue_depth = registry.gauge("serve.queue_depth")->value();
  s.running = registry.gauge("serve.running")->value();
  s.workers = registry.gauge("serve.workers")->value();
  s.rss_mb = CurrentRssMb();
  s.metric_count = static_cast<double>(registry.MetricCount());
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(s);
  } else {
    ring_[head_] = s;
    head_ = (head_ + 1) % capacity_;
  }
}

void TelemetrySampler::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [&] { return stop_requested_; });
      if (stop_requested_) return;
    }
    SampleOnce();
  }
}

void TelemetrySampler::Start(int64_t interval_ms) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    interval_ms_ = interval_ms < 1 ? 1 : interval_ms;
    if (start_ns_ == 0) start_ns_ = NowNs();
  }
  SampleOnce();
  std::lock_guard<std::mutex> lock(mutex_);
  thread_ = std::thread([this] { Loop(); });
}

void TelemetrySampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void TelemetrySampler::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  start_ns_ = 0;
}

std::vector<TelemetrySample> TelemetrySampler::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TelemetrySample> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring wrapped; 0 otherwise.
  const size_t n = ring_.size();
  const size_t start = n < capacity_ ? 0 : head_;
  for (size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % n]);
  return out;
}

std::string TelemetrySampler::TimeSeriesJson() const {
  const std::vector<TelemetrySample> samples = Samples();
  int64_t interval;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    interval = interval_ms_;
  }
  std::string out = "{";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"interval_ms\": %lld, \"count\": %zu, ",
                static_cast<long long>(interval), samples.size());
  out += buf;
  out += "\"t_ms\": [";
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(samples[i].t_ms));
    out += buf;
  }
  out += "], ";
  AppendColumn("queue_depth", samples,
               [](const TelemetrySample& s) { return s.queue_depth; }, &out);
  out += ", ";
  AppendColumn("running", samples,
               [](const TelemetrySample& s) { return s.running; }, &out);
  out += ", ";
  AppendColumn("workers", samples,
               [](const TelemetrySample& s) { return s.workers; }, &out);
  out += ", ";
  AppendColumn("rss_mb", samples,
               [](const TelemetrySample& s) { return s.rss_mb; }, &out);
  out += ", ";
  AppendColumn("metric_count", samples,
               [](const TelemetrySample& s) { return s.metric_count; }, &out);
  out += "}";
  return out;
}

}  // namespace vadasa::obs
