#include "vadalog/bindings.h"

#include "common/csv.h"

namespace vadasa::vadalog {

Status LoadBindings(const Program& program, Database* db) {
  for (const Binding& binding : program.bindings) {
    VADASA_ASSIGN_OR_RETURN(const CsvTable csv, ReadCsvFile(binding.path));
    for (const auto& row : csv.rows) {
      std::vector<Value> values;
      values.reserve(row.size());
      for (const std::string& cell : row) values.push_back(CellToValue(cell));
      db->AddFact(binding.predicate, std::move(values));
    }
  }
  return Status::OK();
}

}  // namespace vadasa::vadalog
