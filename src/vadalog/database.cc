#include "vadalog/database.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace vadasa::vadalog {

const std::vector<std::vector<Value>> Database::kEmptyRows = {};

std::string Fact::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ",";
    out += row[i].ToString();
  }
  return out + ")";
}

int64_t Relation::Find(const std::vector<Value>& row) const {
  const size_t h = HashValues(row);
  auto it = dedup_.find(h);
  if (it == dedup_.end()) return -1;
  for (uint32_t idx : it->second) {
    if (rows_[idx].size() != row.size()) continue;
    bool eq = true;
    for (size_t i = 0; i < row.size(); ++i) {
      if (!rows_[idx][i].Equals(row[i])) {
        eq = false;
        break;
      }
    }
    if (eq) return idx;
  }
  return -1;
}

std::pair<size_t, bool> Relation::Insert(std::vector<Value> row, FactId id) {
  const int64_t existing = Find(row);
  if (existing >= 0) return {static_cast<size_t>(existing), false};
  const size_t h = HashValues(row);
  const uint32_t idx = static_cast<uint32_t>(rows_.size());
  dedup_[h].push_back(idx);
  rows_.push_back(std::move(row));
  fact_ids_.push_back(id);
  return {idx, true};
}

const std::vector<uint32_t>& Relation::RowsWithValue(size_t col, const Value& v) const {
  static const std::vector<uint32_t> kEmpty;
  if (col_index_.empty()) {
    col_index_.resize(arity_);
    col_indexed_upto_.assign(arity_, 0);
  }
  if (col >= arity_) return kEmpty;
  // Extend the index incrementally to cover new rows.
  auto& index = col_index_[col];
  for (size_t i = col_indexed_upto_[col]; i < rows_.size(); ++i) {
    index[rows_[i][col].Hash()].push_back(static_cast<uint32_t>(i));
  }
  col_indexed_upto_[col] = rows_.size();
  auto it = index.find(v.Hash());
  if (it == index.end()) return kEmpty;
  return it->second;
}

void Relation::RebuildIndexes() {
  dedup_.clear();
  col_index_.clear();
  col_indexed_upto_.clear();
  for (uint32_t i = 0; i < rows_.size(); ++i) {
    dedup_[HashValues(rows_[i])].push_back(i);
  }
}

FactId Database::AddFact(const std::string& predicate, std::vector<Value> row,
                         Provenance prov) {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) {
    it = relations_.emplace(predicate, Relation(row.size())).first;
  }
  const FactId id = static_cast<FactId>(facts_.size());
  auto [idx, inserted] = it->second.Insert(row, id);
  if (!inserted) return it->second.fact_id(idx);
  facts_.push_back(Fact{predicate, it->second.row(idx)});
  provenance_.push_back(std::move(prov));
  return id;
}

bool Database::Contains(const std::string& predicate,
                        const std::vector<Value>& row) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return false;
  return it->second.Find(row) >= 0;
}

const Relation* Database::relation(const std::string& predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? nullptr : &it->second;
}

const std::vector<std::vector<Value>>& Database::Rows(
    const std::string& predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? kEmptyRows : it->second.rows();
}

std::vector<std::string> Database::Predicates() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    (void)rel;
    out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Database::SubstituteNulls(const std::unordered_map<uint64_t, Value>& subst) {
  if (subst.empty()) return;
  // Chase substitutions: follow chains null -> null -> constant, recursing
  // into collections (VSets hold nulls inside (name,value) pairs).
  std::function<bool(Value*)> rewrite = [&](Value* v) -> bool {
    if (v->is_null()) {
      bool changed = false;
      int guard = 0;
      while (v->is_null() && guard++ < 64) {
        auto it = subst.find(v->null_label());
        if (it == subst.end()) break;
        *v = it->second;
        changed = true;
      }
      return changed;
    }
    if (v->is_collection()) {
      std::vector<Value> items = v->items();
      bool changed = false;
      for (Value& item : items) changed |= rewrite(&item);
      if (changed) {
        *v = v->is_set() ? Value::Set(std::move(items)) : Value::List(std::move(items));
      }
      return changed;
    }
    return false;
  };
  // Rebuild every relation with substituted rows; duplicates collapse.
  std::unordered_map<std::string, Relation> fresh;
  std::vector<Fact> new_facts;
  std::vector<Provenance> new_prov;
  new_facts.reserve(facts_.size());
  new_prov.reserve(provenance_.size());
  for (size_t id = 0; id < facts_.size(); ++id) {
    std::vector<Value> row = facts_[id].row;
    for (Value& v : row) rewrite(&v);
    auto it = fresh.find(facts_[id].predicate);
    if (it == fresh.end()) {
      it = fresh.emplace(facts_[id].predicate, Relation(row.size())).first;
    }
    const FactId new_id = static_cast<FactId>(new_facts.size());
    auto [idx, inserted] = it->second.Insert(row, new_id);
    if (inserted) {
      new_facts.push_back(Fact{facts_[id].predicate, it->second.row(idx)});
      new_prov.push_back(provenance_[id]);
    }
  }
  relations_ = std::move(fresh);
  facts_ = std::move(new_facts);
  provenance_ = std::move(new_prov);
  // Note: provenance support ids become approximate after merging; the
  // explanation module tolerates dangling ids by clamping.
  for (auto& p : provenance_) {
    for (auto& s : p.support) {
      if (s >= facts_.size()) s = kInvalidFactId;
    }
  }
}

std::string Database::DumpPredicate(const std::string& predicate) const {
  std::vector<std::string> lines;
  for (const auto& row : Rows(predicate)) {
    lines.push_back(Fact{predicate, row}.ToString());
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  for (const auto& l : lines) os << l << "\n";
  return os.str();
}

}  // namespace vadasa::vadalog
