#include "vadalog/ast.h"

#include <sstream>

namespace vadasa::vadalog {

namespace {

std::string QuoteIfNeeded(const Value& v) {
  if (v.is_string()) return "\"" + v.as_string() + "\"";
  return v.ToString();
}

}  // namespace

std::string Term::ToString() const {
  if (kind == Kind::kVariable) return var;
  return QuoteIfNeeded(constant);
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string Literal::ToString() const {
  return negated ? "not " + atom.ToString() : atom.ToString();
}

std::shared_ptr<Expr> Expr::Const(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->constant = std::move(v);
  return e;
}

std::shared_ptr<Expr> Expr::Var(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

std::shared_ptr<Expr> Expr::Binary(BinaryOp op, std::shared_ptr<Expr> l,
                                   std::shared_ptr<Expr> r) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->args = {std::move(l), std::move(r)};
  return e;
}

std::shared_ptr<Expr> Expr::Call(std::string name,
                                 std::vector<std::shared_ptr<Expr>> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->call = std::move(name);
  e->args = std::move(args);
  return e;
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      out->push_back(var);
      return;
    case Kind::kBinary:
    case Kind::kCall:
      for (const auto& a : args) a->CollectVars(out);
      return;
  }
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return QuoteIfNeeded(constant);
    case Kind::kVar:
      return var;
    case Kind::kBinary: {
      const char* op_str = "+";
      switch (op) {
        case BinaryOp::kAdd: op_str = "+"; break;
        case BinaryOp::kSub: op_str = "-"; break;
        case BinaryOp::kMul: op_str = "*"; break;
        case BinaryOp::kDiv: op_str = "/"; break;
        case BinaryOp::kMod: op_str = "%"; break;
      }
      return "(" + args[0]->ToString() + " " + op_str + " " + args[1]->ToString() + ")";
    }
    case Kind::kCall: {
      std::string out = call + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ",";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

std::string CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kIn: return "in";
    case CompareOp::kSubset: return "subset";
  }
  return "?";
}

std::string Condition::ToString() const {
  return lhs->ToString() + " " + CompareOpToString(op) + " " + rhs->ToString();
}

std::string Assignment::ToString() const {
  return target + " = " + expr->ToString();
}

std::string AggregateFuncToString(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kSum: return "msum";
    case AggregateFunc::kCount: return "mcount";
    case AggregateFunc::kProd: return "mprod";
    case AggregateFunc::kMin: return "mmin";
    case AggregateFunc::kMax: return "mmax";
    case AggregateFunc::kUnion: return "munion";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  std::string out = target + " = " + AggregateFuncToString(func) + "(";
  if (value) out += value->ToString() + ", ";
  out += "<";
  for (size_t i = 0; i < contributors.size(); ++i) {
    if (i > 0) out += ",";
    out += contributors[i]->ToString();
  }
  out += ">)";
  return out;
}

std::string Rule::ToString() const {
  std::string out;
  if (is_egd) {
    out = egd_lhs + " = " + egd_rhs;
  } else {
    for (size_t i = 0; i < head.size(); ++i) {
      if (i > 0) out += ", ";
      out += head[i].ToString();
    }
  }
  out += " :- ";
  bool first = true;
  auto sep = [&]() {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& l : body) {
    sep();
    out += l.ToString();
  }
  for (const auto& c : conditions) {
    sep();
    out += c.ToString();
  }
  for (const auto& a : assignments) {
    sep();
    out += a.ToString();
  }
  for (const auto& g : aggregates) {
    sep();
    out += g.ToString();
  }
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (const auto& in : inputs) os << "@input(\"" << in << "\").\n";
  for (const auto& o : outputs) os << "@output(\"" << o << "\").\n";
  for (const auto& b : bindings) {
    os << "@bind(\"" << b.predicate << "\", \"" << b.path << "\").\n";
  }
  for (const auto& f : facts) os << f.ToString() << ".\n";
  for (const auto& r : rules) os << r.ToString() << "\n";
  return os.str();
}

}  // namespace vadasa::vadalog
