#include "vadalog/expr_eval.h"

#include <algorithm>
#include <cmath>

#include "common/similarity.h"
#include "common/string_util.h"

namespace vadasa::vadalog {

namespace {

Status ArityError(const std::string& fn, size_t want, size_t got) {
  return Status::TypeError("function " + fn + " expects " + std::to_string(want) +
                           " argument(s), got " + std::to_string(got));
}

Result<Value> EvalBinary(BinaryOp op, const Value& a, const Value& b) {
  if (op == BinaryOp::kAdd && a.is_string() && b.is_string()) {
    return Value::String(a.as_string() + b.as_string());
  }
  VADASA_ASSIGN_OR_RETURN(const double x, a.ToNumeric());
  VADASA_ASSIGN_OR_RETURN(const double y, b.ToNumeric());
  const bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case BinaryOp::kAdd:
      return both_int ? Value::Int(a.as_int() + b.as_int()) : Value::Double(x + y);
    case BinaryOp::kSub:
      return both_int ? Value::Int(a.as_int() - b.as_int()) : Value::Double(x - y);
    case BinaryOp::kMul:
      return both_int ? Value::Int(a.as_int() * b.as_int()) : Value::Double(x * y);
    case BinaryOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(x / y);
    case BinaryOp::kMod: {
      if (b.as_int() == 0) return Status::InvalidArgument("mod by zero");
      return Value::Int(a.as_int() % b.as_int());
    }
  }
  return Status::Internal("unknown binary op");
}

bool IsPair(const Value& v) { return v.is_list() && v.items().size() == 2; }

/// Looks up the value of key `k` in a pairset; nullptr if absent.
const Value* PairsetGet(const Value& pairset, const Value& k) {
  if (!pairset.is_collection()) return nullptr;
  for (const Value& item : pairset.items()) {
    if (IsPair(item) && item.items()[0].Equals(k)) return &item.items()[1];
  }
  return nullptr;
}

Result<Value> EvalCall(const std::string& fn, const std::vector<Value>& a) {
  auto want = [&](size_t n) -> Status {
    if (a.size() != n) return ArityError(fn, n, a.size());
    return Status::OK();
  };
  // --- scalar ---
  if (fn == "abs") {
    VADASA_RETURN_NOT_OK(want(1));
    if (a[0].is_int()) return Value::Int(std::abs(a[0].as_int()));
    VADASA_ASSIGN_OR_RETURN(const double x, a[0].ToNumeric());
    return Value::Double(std::fabs(x));
  }
  if (fn == "min" || fn == "max") {
    VADASA_RETURN_NOT_OK(want(2));
    VADASA_ASSIGN_OR_RETURN(const double x, a[0].ToNumeric());
    VADASA_ASSIGN_OR_RETURN(const double y, a[1].ToNumeric());
    const bool left = (fn == "min") ? (x <= y) : (x >= y);
    return left ? a[0] : a[1];
  }
  if (fn == "mod") {
    VADASA_RETURN_NOT_OK(want(2));
    return EvalBinary(BinaryOp::kMod, a[0], a[1]);
  }
  if (fn == "pow") {
    VADASA_RETURN_NOT_OK(want(2));
    VADASA_ASSIGN_OR_RETURN(const double x, a[0].ToNumeric());
    VADASA_ASSIGN_OR_RETURN(const double y, a[1].ToNumeric());
    return Value::Double(std::pow(x, y));
  }
  if (fn == "sqrt") {
    VADASA_RETURN_NOT_OK(want(1));
    VADASA_ASSIGN_OR_RETURN(const double x, a[0].ToNumeric());
    if (x < 0) return Status::InvalidArgument("sqrt of negative");
    return Value::Double(std::sqrt(x));
  }
  if (fn == "floor" || fn == "ceil" || fn == "round") {
    VADASA_RETURN_NOT_OK(want(1));
    VADASA_ASSIGN_OR_RETURN(const double x, a[0].ToNumeric());
    const double r = fn == "floor" ? std::floor(x) : fn == "ceil" ? std::ceil(x)
                                                                  : std::round(x);
    return Value::Int(static_cast<int64_t>(r));
  }
  // --- logic ---
  if (fn == "if") {
    VADASA_RETURN_NOT_OK(want(3));
    if (!a[0].is_bool()) return Status::TypeError("if() condition must be bool");
    return a[0].as_bool() ? a[1] : a[2];
  }
  if (fn == "and" || fn == "or") {
    VADASA_RETURN_NOT_OK(want(2));
    if (!a[0].is_bool() || !a[1].is_bool()) {
      return Status::TypeError(fn + "() needs bool arguments");
    }
    return Value::Bool(fn == "and" ? (a[0].as_bool() && a[1].as_bool())
                                   : (a[0].as_bool() || a[1].as_bool()));
  }
  if (fn == "not") {
    VADASA_RETURN_NOT_OK(want(1));
    if (!a[0].is_bool()) return Status::TypeError("not() needs a bool argument");
    return Value::Bool(!a[0].as_bool());
  }
  if (fn == "eq") {
    VADASA_RETURN_NOT_OK(want(2));
    return Value::Bool(a[0].Equals(a[1]));
  }
  if (fn == "ne") {
    VADASA_RETURN_NOT_OK(want(2));
    return Value::Bool(!a[0].Equals(a[1]));
  }
  if (fn == "maybe_eq") {
    VADASA_RETURN_NOT_OK(want(2));
    return Value::Bool(a[0].MaybeEquals(a[1]));
  }
  if (fn == "lt" || fn == "le" || fn == "gt" || fn == "ge") {
    VADASA_RETURN_NOT_OK(want(2));
    const int c = a[0].Compare(a[1]);
    if (fn == "lt") return Value::Bool(c < 0);
    if (fn == "le") return Value::Bool(c <= 0);
    if (fn == "gt") return Value::Bool(c > 0);
    return Value::Bool(c >= 0);
  }
  // --- string ---
  if (fn == "concat") {
    std::string out;
    for (const Value& v : a) out += v.ToString();
    return Value::String(std::move(out));
  }
  if (fn == "lower" || fn == "upper") {
    VADASA_RETURN_NOT_OK(want(1));
    if (!a[0].is_string()) return Status::TypeError(fn + "() needs a string");
    std::string s = a[0].as_string();
    for (char& c : s) {
      c = fn == "lower" ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                        : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return Value::String(std::move(s));
  }
  if (fn == "strlen") {
    VADASA_RETURN_NOT_OK(want(1));
    if (!a[0].is_string()) return Status::TypeError("strlen() needs a string");
    return Value::Int(static_cast<int64_t>(a[0].as_string().size()));
  }
  if (fn == "similarity") {
    VADASA_RETURN_NOT_OK(want(2));
    if (!a[0].is_string() || !a[1].is_string()) {
      return Status::TypeError("similarity() needs strings");
    }
    return Value::Double(AttributeNameSimilarity(a[0].as_string(), a[1].as_string()));
  }
  // --- value inspection ---
  if (fn == "is_null") {
    VADASA_RETURN_NOT_OK(want(1));
    return Value::Bool(a[0].is_null());
  }
  if (fn == "null_label") {
    VADASA_RETURN_NOT_OK(want(1));
    if (!a[0].is_null()) return Status::TypeError("null_label() needs a null");
    return Value::Int(static_cast<int64_t>(a[0].null_label()));
  }
  if (fn == "to_string") {
    VADASA_RETURN_NOT_OK(want(1));
    return Value::String(a[0].ToString());
  }
  // --- collections ---
  if (fn == "list") return Value::List(a);
  if (fn == "set") return Value::Set(a);
  if (fn == "size") {
    VADASA_RETURN_NOT_OK(want(1));
    if (!a[0].is_collection()) return Status::TypeError("size() needs a collection");
    return Value::Int(static_cast<int64_t>(a[0].items().size()));
  }
  if (fn == "union" || fn == "intersection" || fn == "difference") {
    VADASA_RETURN_NOT_OK(want(2));
    if (!a[0].is_collection() || !a[1].is_collection()) {
      return Status::TypeError(fn + "() needs collections");
    }
    std::vector<Value> out;
    if (fn == "union") {
      out = a[0].items();
      out.insert(out.end(), a[1].items().begin(), a[1].items().end());
    } else if (fn == "intersection") {
      for (const Value& v : a[0].items()) {
        for (const Value& w : a[1].items()) {
          if (v.Equals(w)) {
            out.push_back(v);
            break;
          }
        }
      }
    } else {
      for (const Value& v : a[0].items()) {
        bool found = false;
        for (const Value& w : a[1].items()) {
          if (v.Equals(w)) {
            found = true;
            break;
          }
        }
        if (!found) out.push_back(v);
      }
    }
    return Value::Set(std::move(out));
  }
  if (fn == "contains") {
    VADASA_RETURN_NOT_OK(want(2));
    if (!a[0].is_collection()) return Status::TypeError("contains() needs a collection");
    for (const Value& v : a[0].items()) {
      if (v.Equals(a[1])) return Value::Bool(true);
    }
    return Value::Bool(false);
  }
  if (fn == "pair") {
    VADASA_RETURN_NOT_OK(want(2));
    return Value::List({a[0], a[1]});
  }
  if (fn == "first" || fn == "second") {
    VADASA_RETURN_NOT_OK(want(1));
    if (!IsPair(a[0])) return Status::TypeError(fn + "() needs a pair");
    return a[0].items()[fn == "first" ? 0 : 1];
  }
  if (fn == "get") {
    VADASA_RETURN_NOT_OK(want(2));
    const Value* v = PairsetGet(a[0], a[1]);
    if (v == nullptr) {
      return Status::NotFound("get(): key " + a[1].ToString() + " not in " +
                              a[0].ToString());
    }
    return *v;
  }
  if (fn == "has_key") {
    VADASA_RETURN_NOT_OK(want(2));
    return Value::Bool(PairsetGet(a[0], a[1]) != nullptr);
  }
  if (fn == "with") {
    VADASA_RETURN_NOT_OK(want(3));
    if (!a[0].is_collection()) return Status::TypeError("with() needs a pairset");
    std::vector<Value> out;
    for (const Value& item : a[0].items()) {
      if (IsPair(item) && item.items()[0].Equals(a[1])) continue;
      out.push_back(item);
    }
    out.push_back(Value::List({a[1], a[2]}));
    return Value::Set(std::move(out));
  }
  if (fn == "without") {
    VADASA_RETURN_NOT_OK(want(2));
    if (!a[0].is_collection()) return Status::TypeError("without() needs a pairset");
    std::vector<Value> out;
    for (const Value& item : a[0].items()) {
      if (IsPair(item) && item.items()[0].Equals(a[1])) continue;
      out.push_back(item);
    }
    return Value::Set(std::move(out));
  }
  if (fn == "keys" || fn == "values") {
    VADASA_RETURN_NOT_OK(want(1));
    if (!a[0].is_collection()) return Status::TypeError(fn + "() needs a pairset");
    std::vector<Value> out;
    for (const Value& item : a[0].items()) {
      if (IsPair(item)) out.push_back(item.items()[fn == "keys" ? 0 : 1]);
    }
    return Value::Set(std::move(out));
  }
  if (fn == "project") {
    VADASA_RETURN_NOT_OK(want(2));
    if (!a[0].is_collection() || !a[1].is_collection()) {
      return Status::TypeError("project() needs (pairset, keyset)");
    }
    std::vector<Value> out;
    for (const Value& item : a[0].items()) {
      if (!IsPair(item)) continue;
      for (const Value& k : a[1].items()) {
        if (item.items()[0].Equals(k)) {
          out.push_back(item);
          break;
        }
      }
    }
    return Value::Set(std::move(out));
  }
  return Status::NotFound("unknown function: " + fn);
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const VarLookup& lookup) {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return expr.constant;
    case Expr::Kind::kVar: {
      const Value* v = lookup(expr.var);
      if (v == nullptr) {
        return Status::FailedPrecondition("unbound variable in expression: " + expr.var);
      }
      return *v;
    }
    case Expr::Kind::kBinary: {
      VADASA_ASSIGN_OR_RETURN(const Value a, EvalExpr(*expr.args[0], lookup));
      VADASA_ASSIGN_OR_RETURN(const Value b, EvalExpr(*expr.args[1], lookup));
      return EvalBinary(expr.op, a, b);
    }
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& e : expr.args) {
        VADASA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, lookup));
        args.push_back(std::move(v));
      }
      return EvalCall(expr.call, args);
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> EvalCondition(const Condition& cond, const VarLookup& lookup) {
  VADASA_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*cond.lhs, lookup));
  VADASA_ASSIGN_OR_RETURN(const Value rhs, EvalExpr(*cond.rhs, lookup));
  switch (cond.op) {
    case CompareOp::kEq:
      return lhs.Equals(rhs);
    case CompareOp::kNe:
      return !lhs.Equals(rhs);
    case CompareOp::kLt:
      return lhs.Compare(rhs) < 0;
    case CompareOp::kLe:
      return lhs.Compare(rhs) <= 0;
    case CompareOp::kGt:
      return lhs.Compare(rhs) > 0;
    case CompareOp::kGe:
      return lhs.Compare(rhs) >= 0;
    case CompareOp::kIn: {
      if (!rhs.is_collection()) {
        return Status::TypeError("'in' needs a collection on the right");
      }
      for (const Value& v : rhs.items()) {
        if (v.Equals(lhs)) return true;
      }
      return false;
    }
    case CompareOp::kSubset: {
      if (!lhs.is_collection() || !rhs.is_collection()) {
        return Status::TypeError("'subset' needs collections");
      }
      for (const Value& v : lhs.items()) {
        bool found = false;
        for (const Value& w : rhs.items()) {
          if (v.Equals(w)) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
  }
  return Status::Internal("unknown comparison");
}

}  // namespace vadasa::vadalog
