#ifndef VADASA_VADALOG_EXTERNALS_H_
#define VADASA_VADALOG_EXTERNALS_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "vadalog/database.h"

namespace vadasa::vadalog {

/// An external predicate `#name(...)` usable in rule bodies — the paper's
/// plug-in mechanism for `#risk`, `#rel`, etc. (Section 4.2).
///
/// The callback receives the argument vector with bound positions filled
/// (nullopt = unbound) plus read-only access to the current database, and
/// returns the matching rows (full arity). Returning zero rows fails the
/// binding; multiple rows enumerate alternatives.
using ExternalPredicateFn =
    std::function<Result<std::vector<std::vector<Value>>>(
        const std::vector<std::optional<Value>>& bound_args, const Database& db)>;

class Engine;

/// Handed to external actions so they can inject facts into the running
/// chase (the injected facts join the next round's delta).
class ActionContext {
 public:
  ActionContext(Database* db, std::vector<std::pair<std::string, std::vector<Value>>>* emitted)
      : db_(db), emitted_(emitted) {}

  const Database& db() const { return *db_; }

  /// Queues a fact for insertion; it becomes visible in the next round.
  void Emit(std::string predicate, std::vector<Value> row) {
    emitted_->emplace_back(std::move(predicate), std::move(row));
  }

  /// Allocates a fresh labelled null (e.g. for local suppression).
  Value FreshNull() { return Value::Null(db_->FreshNullLabel()); }

 private:
  Database* db_;
  std::vector<std::pair<std::string, std::vector<Value>>>* emitted_;
};

/// An external action `#name(...)` usable in rule heads — the paper's
/// `#anonymize`. Invoked once per distinct body binding.
using ExternalActionFn =
    std::function<Status(const std::vector<Value>& args, ActionContext* ctx)>;

/// Name → callback registry for external predicates and actions. Names are
/// stored *with* the leading '#'.
class ExternalRegistry {
 public:
  void RegisterPredicate(const std::string& name, ExternalPredicateFn fn) {
    predicates_[Normalize(name)] = std::move(fn);
  }
  void RegisterAction(const std::string& name, ExternalActionFn fn) {
    actions_[Normalize(name)] = std::move(fn);
  }

  const ExternalPredicateFn* FindPredicate(const std::string& name) const {
    auto it = predicates_.find(name);
    return it == predicates_.end() ? nullptr : &it->second;
  }
  const ExternalActionFn* FindAction(const std::string& name) const {
    auto it = actions_.find(name);
    return it == actions_.end() ? nullptr : &it->second;
  }

 private:
  static std::string Normalize(const std::string& name) {
    return name.empty() || name[0] == '#' ? name : "#" + name;
  }

  std::unordered_map<std::string, ExternalPredicateFn> predicates_;
  std::unordered_map<std::string, ExternalActionFn> actions_;
};

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_EXTERNALS_H_
