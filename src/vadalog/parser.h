#ifndef VADASA_VADALOG_PARSER_H_
#define VADASA_VADALOG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "vadalog/ast.h"

namespace vadasa::vadalog {

/// Parses a Vadalog program.
///
/// Grammar sketch (see README for the full dialect reference):
///
///   clause      := annotation | fact '.' | rule '.'
///   annotation  := '@' ident '(' string ')'
///   rule        := head ':-' body_item (',' body_item)*
///   head        := atom (',' atom)* | VAR '=' VAR            (EGD)
///   body_item   := ['not'] atom
///                | VAR '=' aggregate | VAR '=' expr          (assignment)
///                | expr cmp expr                             (condition)
///   aggregate   := ('msum'|'mcount'|'mprod'|'mmin'|'mmax'|'munion')
///                  '(' [expr ','] '<' expr (',' expr)* '>' ')'
///   atom        := (ident | '#'ident) '(' term (',' term)* ')'
///
/// Lowercase identifiers are symbol constants (strings); uppercase-initial
/// identifiers are variables. Comments: '%' or '//' to end of line.
Result<Program> Parse(std::string_view source);

/// Parses a single ground atom like `att("I&G","Area")`. Handy for tests.
Result<Atom> ParseFact(std::string_view text);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_PARSER_H_
