#include "vadalog/query.h"

#include <algorithm>

#include "vadalog/parser.h"

namespace vadasa::vadalog {

namespace {

bool RowHasNull(const std::vector<Value>& row) {
  for (const Value& v : row) {
    if (v.is_null()) return true;
    if (v.is_collection()) {
      if (RowHasNull(v.items())) return true;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<std::vector<Value>>> EvaluateQuery(const Database& db,
                                                      const std::string& query_source,
                                                      Engine* engine,
                                                      QueryOptions options) {
  VADASA_ASSIGN_OR_RETURN(Program program, Parse(query_source));
  if (program.rules.size() != 1 || !program.facts.empty()) {
    return Status::InvalidArgument("a query must be a single rule");
  }
  Rule& rule = program.rules[0];
  if (rule.is_egd || rule.head.size() != 1) {
    return Status::InvalidArgument("a query needs exactly one head atom");
  }
  if (rule.head[0].predicate != "q") {
    return Status::InvalidArgument("the query head predicate must be named 'q'");
  }
  // Run against a scratch copy so the caller's database stays pristine.
  Database scratch = db;
  Engine local_engine;
  Engine* e = engine != nullptr ? engine : &local_engine;
  VADASA_ASSIGN_OR_RETURN(const RunStats stats, e->Run(program, &scratch));
  (void)stats;

  std::vector<std::vector<Value>> rows;
  if (!rule.aggregates.empty()) {
    // Finalize the monotone stream: max per group (sum/count/prod/max grow,
    // min shrinks — pick per the first aggregate's direction).
    const bool take_max = rule.aggregates[0].func != AggregateFunc::kMin;
    // The aggregate target's position in the head determines the value col.
    size_t value_col = 0;
    for (size_t i = 0; i < rule.head[0].args.size(); ++i) {
      const Term& t = rule.head[0].args[i];
      if (t.is_variable() && t.var == rule.aggregates[0].target) value_col = i;
    }
    rows = FinalAggregateRows(scratch, "q", value_col, take_max);
  } else {
    rows = scratch.Rows("q");
  }
  if (options.certain_only) {
    rows.erase(std::remove_if(rows.begin(), rows.end(), RowHasNull), rows.end());
  }
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              const size_t n = std::min(a.size(), b.size());
              for (size_t i = 0; i < n; ++i) {
                const int c = a[i].Compare(b[i]);
                if (c != 0) return c < 0;
              }
              return a.size() < b.size();
            });
  rows.erase(std::unique(rows.begin(), rows.end(),
                         [](const std::vector<Value>& a, const std::vector<Value>& b) {
                           if (a.size() != b.size()) return false;
                           for (size_t i = 0; i < a.size(); ++i) {
                             if (!a[i].Equals(b[i])) return false;
                           }
                           return true;
                         }),
             rows.end());
  return rows;
}

Result<size_t> CountQuery(const Database& db, const std::string& query_source,
                          Engine* engine) {
  VADASA_ASSIGN_OR_RETURN(const auto rows, EvaluateQuery(db, query_source, engine));
  return rows.size();
}

}  // namespace vadasa::vadalog
