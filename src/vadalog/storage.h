#ifndef VADASA_VADALOG_STORAGE_H_
#define VADASA_VADALOG_STORAGE_H_

#include <string>

#include "common/result.h"
#include "vadalog/database.h"

namespace vadasa::vadalog {

/// Simple directory-per-database persistence: each predicate becomes
/// `<dir>/<predicate>.csv` (header `c0..cN-1`, one row per fact, cells in the
/// CellToValue format so labelled nulls survive as `NULL_k`). Provenance is
/// not persisted — reloaded facts are asserted facts.
///
/// This is the storage half of the @bind mechanism: a chase result saved
/// here can be rebound as the extensional component of the next reasoning
/// task (how the derived extensional component of one Vada-SA phase feeds
/// the next).
Status SaveDatabase(const Database& db, const std::string& directory);

/// Loads every `*.csv` in `directory` back into `db` (predicate = file stem).
Status LoadDatabase(const std::string& directory, Database* db);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_STORAGE_H_
