#include "vadalog/storage.h"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "common/csv.h"

namespace vadasa::vadalog {

namespace fs = std::filesystem;

Status SaveDatabase(const Database& db, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create " + directory + ": " + ec.message());
  }
  for (const std::string& predicate : db.Predicates()) {
    const auto& rows = db.Rows(predicate);
    if (rows.empty()) continue;
    CsvTable csv;
    for (size_t c = 0; c < rows[0].size(); ++c) {
      csv.header.push_back("c" + std::to_string(c));
    }
    for (const auto& row : rows) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const Value& v : row) {
        cells.push_back(v.is_null() ? "NULL_" + std::to_string(v.null_label())
                                    : v.ToString());
      }
      csv.rows.push_back(std::move(cells));
    }
    VADASA_RETURN_NOT_OK(
        WriteCsvFile((fs::path(directory) / (predicate + ".csv")).string(), csv));
  }
  return Status::OK();
}

Status LoadDatabase(const std::string& directory, Database* db) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::NotFound(directory + " is not a directory");
  }
  // Deterministic order: collect then sort.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (entry.path().extension() == ".csv") files.push_back(entry.path());
  }
  if (ec) return Status::IoError("cannot list " + directory + ": " + ec.message());
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    VADASA_ASSIGN_OR_RETURN(const CsvTable csv, ReadCsvFile(file.string()));
    const std::string predicate = file.stem().string();
    for (const auto& row : csv.rows) {
      std::vector<Value> values;
      values.reserve(row.size());
      for (const std::string& cell : row) values.push_back(CellToValue(cell));
      db->AddFact(predicate, std::move(values));
    }
  }
  return Status::OK();
}

}  // namespace vadasa::vadalog
