#ifndef VADASA_VADALOG_BINDINGS_H_
#define VADASA_VADALOG_BINDINGS_H_

#include "common/result.h"
#include "vadalog/ast.h"
#include "vadalog/database.h"

namespace vadasa::vadalog {

/// Materializes the program's @bind("predicate", "file.csv") annotations:
/// each CSV data row (the header line is skipped but fixes the arity) becomes
/// one fact of `predicate`, with cells typed by common::CellToValue (ints,
/// doubles, NULL_k labelled nulls, strings).
///
/// Deliberately separate from Engine::Run so the engine itself never touches
/// the filesystem; callers that evaluate untrusted programs simply skip this.
Status LoadBindings(const Program& program, Database* db);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_BINDINGS_H_
