#include "vadalog/explain.h"

#include <set>
#include <sstream>

namespace vadasa::vadalog {

namespace {

void ExplainRec(const Database& db, const Program& program, FactId id, int depth,
                int max_depth, std::ostringstream* os) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  if (id == kInvalidFactId || id >= db.size()) {
    *os << indent << "(fact merged away by EGD unification)\n";
    return;
  }
  const Fact& fact = db.fact(id);
  const Provenance& prov = db.provenance(id);
  *os << indent << fact.ToString();
  if (prov.rule_index < 0) {
    *os << "  [asserted]\n";
    return;
  }
  if (prov.rule_index < static_cast<int>(program.rules.size())) {
    const Rule& rule = program.rules[prov.rule_index];
    *os << "  [by " << (rule.label.empty() ? "rule " + std::to_string(prov.rule_index + 1)
                                           : rule.label)
        << ": " << rule.ToString() << "]\n";
  } else {
    *os << "  [by rule " << prov.rule_index + 1 << "]\n";
  }
  if (depth + 1 > max_depth) {
    *os << indent << "  ...\n";
    return;
  }
  for (const FactId s : prov.support) {
    ExplainRec(db, program, s, depth + 1, max_depth, os);
  }
}

}  // namespace

std::string ExplainFact(const Database& db, const Program& program, FactId id,
                        int max_depth) {
  std::ostringstream os;
  ExplainRec(db, program, id, 0, max_depth, &os);
  return os.str();
}

namespace {

std::string EscapeForDot(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string EscapeForJson(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RuleLabel(const Program& program, int rule_index) {
  if (rule_index < 0) return "";
  if (rule_index < static_cast<int>(program.rules.size())) {
    const Rule& rule = program.rules[rule_index];
    return rule.label.empty() ? "rule " + std::to_string(rule_index + 1) : rule.label;
  }
  return "rule " + std::to_string(rule_index + 1);
}

void CollectDag(const Database& db, FactId id, std::set<FactId>* seen) {
  if (id == kInvalidFactId || id >= db.size() || seen->count(id)) return;
  seen->insert(id);
  for (const FactId s : db.provenance(id).support) {
    CollectDag(db, s, seen);
  }
}

void JsonRec(const Database& db, const Program& program, FactId id, int depth,
             int max_depth, std::ostringstream* os) {
  if (id == kInvalidFactId || id >= db.size()) {
    *os << "{\"fact\":null}";
    return;
  }
  const Provenance& prov = db.provenance(id);
  *os << "{\"fact\":\"" << EscapeForJson(db.fact(id).ToString()) << "\",";
  if (prov.rule_index < 0) {
    *os << "\"rule\":null,\"support\":[]}";
    return;
  }
  *os << "\"rule\":\"" << EscapeForJson(RuleLabel(program, prov.rule_index))
      << "\",\"support\":[";
  if (depth + 1 <= max_depth) {
    for (size_t i = 0; i < prov.support.size(); ++i) {
      if (i > 0) *os << ",";
      JsonRec(db, program, prov.support[i], depth + 1, max_depth, os);
    }
  }
  *os << "]}";
}

}  // namespace

std::string ExplainFactDot(const Database& db, const Program& program, FactId id) {
  std::set<FactId> nodes;
  CollectDag(db, id, &nodes);
  std::ostringstream os;
  os << "digraph explanation {\n  rankdir=BT;\n";
  for (const FactId n : nodes) {
    const bool asserted = db.provenance(n).rule_index < 0;
    os << "  f" << n << " [label=\"" << EscapeForDot(db.fact(n).ToString()) << "\""
       << (asserted ? ", shape=box" : ", shape=ellipse") << "];\n";
  }
  for (const FactId n : nodes) {
    const Provenance& prov = db.provenance(n);
    for (const FactId s : prov.support) {
      if (s == kInvalidFactId || s >= db.size()) continue;
      os << "  f" << s << " -> f" << n << " [label=\""
         << EscapeForDot(RuleLabel(program, prov.rule_index)) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string ExplainFactJson(const Database& db, const Program& program, FactId id,
                            int max_depth) {
  std::ostringstream os;
  JsonRec(db, program, id, 0, max_depth, &os);
  return os.str();
}

FactId FindFact(const Database& db, const std::string& predicate,
                const std::vector<Value>& row) {
  const Relation* rel = db.relation(predicate);
  if (rel == nullptr) return kInvalidFactId;
  const int64_t idx = rel->Find(row);
  if (idx < 0) return kInvalidFactId;
  return rel->fact_id(static_cast<size_t>(idx));
}

}  // namespace vadasa::vadalog
