#ifndef VADASA_VADALOG_AST_H_
#define VADASA_VADALOG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace vadasa::vadalog {

/// A term of the Vadalog dialect: a constant value or a (regular) variable.
/// Labelled nulls are constants of kind ValueKind::kNull and only arise at
/// runtime (chase) or from explicit fact data.
struct Term {
  enum class Kind { kConstant, kVariable };

  Kind kind = Kind::kConstant;
  Value constant;    ///< Valid when kind == kConstant.
  std::string var;   ///< Valid when kind == kVariable.

  static Term Constant(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = std::move(v);
    return t;
  }
  static Term Variable(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = std::move(name);
    return t;
  }
  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  std::string ToString() const;
};

/// `predicate(t1, ..., tn)`. Predicates starting with '#' are external.
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  bool is_external() const { return !predicate.empty() && predicate[0] == '#'; }
  std::string ToString() const;
};

/// A body literal: an atom, possibly negated (`not p(X)`).
struct Literal {
  Atom atom;
  bool negated = false;

  std::string ToString() const;
};

/// Binary operators of scalar expressions.
enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMod };

/// An arithmetic / functional expression appearing in conditions, assignments
/// and aggregate arguments.
struct Expr {
  enum class Kind { kConst, kVar, kBinary, kCall };

  Kind kind = Kind::kConst;
  Value constant;                            ///< kConst
  std::string var;                           ///< kVar
  BinaryOp op = BinaryOp::kAdd;              ///< kBinary
  std::string call;                          ///< kCall: function name
  std::vector<std::shared_ptr<Expr>> args;   ///< kBinary (2) / kCall (n)

  static std::shared_ptr<Expr> Const(Value v);
  static std::shared_ptr<Expr> Var(std::string name);
  static std::shared_ptr<Expr> Binary(BinaryOp op, std::shared_ptr<Expr> l,
                                      std::shared_ptr<Expr> r);
  static std::shared_ptr<Expr> Call(std::string name,
                                    std::vector<std::shared_ptr<Expr>> args);

  /// Collects variable names referenced by this expression into `out`.
  void CollectVars(std::vector<std::string>* out) const;

  std::string ToString() const;
};

/// Comparison operators of rule conditions.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kIn, kSubset };

std::string CompareOpToString(CompareOp op);

/// A condition `lhs OP rhs` in a rule body (conjunction implied).
struct Condition {
  CompareOp op = CompareOp::kEq;
  std::shared_ptr<Expr> lhs;
  std::shared_ptr<Expr> rhs;

  std::string ToString() const;
};

/// `Var = expr` — binds a fresh variable to a computed value.
struct Assignment {
  std::string target;
  std::shared_ptr<Expr> expr;

  std::string ToString() const;
};

/// Monotonic aggregation functions (Section 3 / [6]).
enum class AggregateFunc { kSum, kCount, kProd, kMin, kMax, kUnion };

std::string AggregateFuncToString(AggregateFunc func);

/// `Var = msum(expr, <C1,...,Ck>)` — a monotonic aggregate. The group key is
/// the tuple of non-aggregate head arguments; the contributor key is the
/// tuple of contributor expressions. Per (group, contributor) only the
/// extremal contribution counts, which is what lets anonymized tuple versions
/// *replace* their predecessors inside aggregates (Section 4.3).
struct AggregateSpec {
  std::string target;
  AggregateFunc func = AggregateFunc::kSum;
  std::shared_ptr<Expr> value;               ///< Absent for mcount.
  std::vector<std::shared_ptr<Expr>> contributors;

  std::string ToString() const;
};

/// A rule `head1, head2 :- body.` with conditions, assignments and
/// aggregates. Head variables that are neither bound in the body nor assigned
/// are existentially quantified and produce labelled nulls during the chase.
///
/// A rule may instead be an *equality-generating dependency* (EGD) with head
/// `X = Y`; see `is_egd`.
struct Rule {
  std::vector<Atom> head;
  std::vector<Literal> body;
  std::vector<Condition> conditions;
  std::vector<Assignment> assignments;
  std::vector<AggregateSpec> aggregates;

  bool is_egd = false;
  std::string egd_lhs;  ///< EGD head variables (must be body-bound).
  std::string egd_rhs;

  /// Human-readable label, e.g. "alg1-rule2" (optional; used in explanations).
  std::string label;

  std::string ToString() const;
};

/// A @bind("predicate", "file.csv") annotation: load the CSV rows as facts
/// of `predicate` before evaluation (see vadalog/bindings.h).
struct Binding {
  std::string predicate;
  std::string path;
};

/// A parsed Vadalog program: facts, rules and annotations.
struct Program {
  std::vector<Atom> facts;  ///< Ground atoms asserted by the program text.
  std::vector<Rule> rules;
  std::vector<std::string> inputs;   ///< @input("p") annotations.
  std::vector<std::string> outputs;  ///< @output("p") annotations.
  std::vector<Binding> bindings;     ///< @bind("p", "file.csv") annotations.

  std::string ToString() const;
};

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_AST_H_
