#ifndef VADASA_VADALOG_QUERY_H_
#define VADASA_VADALOG_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "vadalog/database.h"
#include "vadalog/engine.h"

namespace vadasa::vadalog {

/// Evaluates a one-shot query against a database snapshot.
///
/// `query_source` is a single rule whose head predicate is `q`, e.g.
///   "q(X, Z) :- path(X, Y), edge(Y, Z), not blocked(Z)."
/// It may use everything the dialect offers (negation against existing
/// predicates, conditions, assignments, aggregates — the monotone stream of
/// an aggregate query is finalized to its extremal values).
///
/// Query evaluation knobs.
struct QueryOptions {
  /// Keep only *certain* answers: rows free of labelled nulls. Under the
  /// open-world reading of the chase, a row mentioning ⊥_k holds only for
  /// some completion of the data; certain answers hold in all of them.
  bool certain_only = false;
};

/// The database is not modified; evaluation runs on a copy. Rows come back
/// sorted (Value order), duplicates removed.
Result<std::vector<std::vector<Value>>> EvaluateQuery(const Database& db,
                                                      const std::string& query_source,
                                                      Engine* engine = nullptr,
                                                      QueryOptions options = {});

/// Convenience: count of rows matching the query.
Result<size_t> CountQuery(const Database& db, const std::string& query_source,
                          Engine* engine = nullptr);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_QUERY_H_
