#include "vadalog/engine.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <chrono>

#include "obs/trace.h"
#include "vadalog/expr_eval.h"
#include "vadalog/parser.h"

namespace vadasa::vadalog {

namespace {

// ---------------------------------------------------------------------------
// Rule compilation
// ---------------------------------------------------------------------------

/// Variable-name → slot mapping for one rule.
struct VarMap {
  std::unordered_map<std::string, int> slots;
  std::vector<std::string> names;

  int SlotOf(const std::string& name) {
    auto it = slots.find(name);
    if (it != slots.end()) return it->second;
    const int s = static_cast<int>(names.size());
    slots.emplace(name, s);
    names.push_back(name);
    return s;
  }
  int Find(const std::string& name) const {
    auto it = slots.find(name);
    return it == slots.end() ? -1 : it->second;
  }
};

struct CompiledArg {
  bool is_const = false;
  Value constant;
  int slot = -1;
};

struct CompiledAtom {
  std::string predicate;
  bool external = false;
  std::vector<CompiledArg> args;
};

struct Step {
  enum class Kind { kMatch, kExternal, kNegated, kAssign, kAssignCheck, kCondition };
  Kind kind;
  int index = -1;       // body/assignment/condition index in the source rule
  CompiledAtom atom;    // literal kinds only
};

struct CompiledAggregate {
  int target_slot = -1;
  AggregateFunc func = AggregateFunc::kSum;
  const Expr* value = nullptr;  // may be null (mcount)
  std::vector<const Expr*> contributors;
};

struct CompiledRule {
  const Rule* rule = nullptr;
  int rule_index = -1;
  VarMap vars;
  std::vector<Step> steps;

  // Aggregation (at most on single-head rules).
  std::vector<CompiledAggregate> aggregates;
  std::vector<int> post_assignments;  // indices into rule->assignments
  std::vector<int> post_conditions;   // indices into rule->conditions
  std::set<int> aggregate_target_slots;
  /// Aggregate targets plus post-assignment targets: head positions holding
  /// these slots are derived values, not part of the group key.
  std::set<int> post_slots;

  std::vector<CompiledAtom> head;
  std::set<int> existential_slots;
  std::vector<int> frontier_slots;  // bound slots appearing in the head

  bool is_egd = false;
  int egd_lhs_slot = -1;
  int egd_rhs_slot = -1;

  // Positions (indices into steps) of positive internal matches, used to pick
  // the delta literal in semi-naive evaluation.
  std::vector<int> match_steps;
};

CompiledAtom CompileAtom(const Atom& atom, VarMap* vars) {
  CompiledAtom out;
  out.predicate = atom.predicate;
  out.external = atom.is_external();
  for (const Term& t : atom.args) {
    CompiledArg a;
    if (t.is_constant()) {
      a.is_const = true;
      a.constant = t.constant;
    } else {
      a.slot = vars->SlotOf(t.var);
    }
    out.args.push_back(std::move(a));
  }
  return out;
}

/// Collects the variable slots an expression reads.
void ExprSlots(const Expr& e, const VarMap& vars, std::set<int>* out) {
  std::vector<std::string> names;
  e.CollectVars(&names);
  for (const auto& n : names) {
    const int s = vars.Find(n);
    if (s >= 0) out->insert(s);
  }
}

Result<CompiledRule> CompileRule(const Rule& rule, int index) {
  CompiledRule cr;
  cr.rule = &rule;
  cr.rule_index = index;

  // Register every variable so slots are stable.
  for (const Literal& l : rule.body) {
    for (const Term& t : l.atom.args) {
      if (t.is_variable()) cr.vars.SlotOf(t.var);
    }
  }
  for (const Assignment& a : rule.assignments) {
    std::vector<std::string> names;
    a.expr->CollectVars(&names);
    for (const auto& n : names) cr.vars.SlotOf(n);
    cr.vars.SlotOf(a.target);
  }
  for (const AggregateSpec& g : rule.aggregates) {
    std::vector<std::string> names;
    if (g.value) g.value->CollectVars(&names);
    for (const auto& c : g.contributors) c->CollectVars(&names);
    for (const auto& n : names) cr.vars.SlotOf(n);
    cr.vars.SlotOf(g.target);
  }
  for (const Condition& c : rule.conditions) {
    std::vector<std::string> names;
    c.lhs->CollectVars(&names);
    c.rhs->CollectVars(&names);
    for (const auto& n : names) cr.vars.SlotOf(n);
  }
  for (const Atom& h : rule.head) {
    for (const Term& t : h.args) {
      if (t.is_variable()) cr.vars.SlotOf(t.var);
    }
  }
  if (rule.is_egd) {
    cr.is_egd = true;
    cr.egd_lhs_slot = cr.vars.SlotOf(rule.egd_lhs);
    cr.egd_rhs_slot = cr.vars.SlotOf(rule.egd_rhs);
  }

  // Post/pre split: assignments/conditions depending (transitively) on
  // aggregate targets are evaluated at emission time.
  std::set<int> post_slots;
  for (const AggregateSpec& g : rule.aggregates) {
    const int s = cr.vars.SlotOf(g.target);
    post_slots.insert(s);
    cr.aggregate_target_slots.insert(s);
  }
  std::set<int> pre_assignments;
  for (size_t i = 0; i < rule.assignments.size(); ++i) {
    std::set<int> reads;
    ExprSlots(*rule.assignments[i].expr, cr.vars, &reads);
    bool post = false;
    for (int s : reads) {
      if (post_slots.count(s)) post = true;
    }
    if (post) {
      cr.post_assignments.push_back(static_cast<int>(i));
      post_slots.insert(cr.vars.SlotOf(rule.assignments[i].target));
    } else {
      pre_assignments.insert(static_cast<int>(i));
    }
  }
  std::set<int> pre_conditions;
  for (size_t i = 0; i < rule.conditions.size(); ++i) {
    std::set<int> reads;
    ExprSlots(*rule.conditions[i].lhs, cr.vars, &reads);
    ExprSlots(*rule.conditions[i].rhs, cr.vars, &reads);
    bool post = false;
    for (int s : reads) {
      if (post_slots.count(s)) post = true;
    }
    if (post) {
      cr.post_conditions.push_back(static_cast<int>(i));
    } else {
      pre_conditions.insert(static_cast<int>(i));
    }
  }
  cr.post_slots = post_slots;

  // --- Greedy step scheduling ---
  std::set<int> bound;
  std::vector<bool> lit_done(rule.body.size(), false);
  std::vector<bool> asg_done(rule.assignments.size(), false);
  std::vector<bool> cond_done(rule.conditions.size(), false);
  auto all_bound = [&](const std::set<int>& reads) {
    for (int s : reads) {
      if (!bound.count(s)) return false;
    }
    return true;
  };
  size_t remaining = 0;
  for (size_t i = 0; i < rule.body.size(); ++i) remaining++;
  remaining += pre_assignments.size() + pre_conditions.size();

  while (remaining > 0) {
    bool scheduled = false;
    // 1. Ready pre-assignments (in order).
    for (size_t i = 0; i < rule.assignments.size() && !scheduled; ++i) {
      if (asg_done[i] || !pre_assignments.count(static_cast<int>(i))) continue;
      std::set<int> reads;
      ExprSlots(*rule.assignments[i].expr, cr.vars, &reads);
      if (!all_bound(reads)) continue;
      Step st;
      const int target = cr.vars.SlotOf(rule.assignments[i].target);
      st.kind = bound.count(target) ? Step::Kind::kAssignCheck : Step::Kind::kAssign;
      st.index = static_cast<int>(i);
      cr.steps.push_back(std::move(st));
      bound.insert(target);
      asg_done[i] = true;
      scheduled = true;
    }
    if (scheduled) {
      --remaining;
      continue;
    }
    // 2. Ready pre-conditions.
    for (size_t i = 0; i < rule.conditions.size() && !scheduled; ++i) {
      if (cond_done[i] || !pre_conditions.count(static_cast<int>(i))) continue;
      std::set<int> reads;
      ExprSlots(*rule.conditions[i].lhs, cr.vars, &reads);
      ExprSlots(*rule.conditions[i].rhs, cr.vars, &reads);
      if (!all_bound(reads)) continue;
      Step st;
      st.kind = Step::Kind::kCondition;
      st.index = static_cast<int>(i);
      cr.steps.push_back(std::move(st));
      cond_done[i] = true;
      scheduled = true;
    }
    if (scheduled) {
      --remaining;
      continue;
    }
    // 3. Ready negated literals.
    for (size_t i = 0; i < rule.body.size() && !scheduled; ++i) {
      if (lit_done[i] || !rule.body[i].negated) continue;
      std::set<int> reads;
      for (const Term& t : rule.body[i].atom.args) {
        if (t.is_variable()) reads.insert(cr.vars.SlotOf(t.var));
      }
      if (!all_bound(reads)) continue;
      Step st;
      st.kind = Step::Kind::kNegated;
      st.index = static_cast<int>(i);
      st.atom = CompileAtom(rule.body[i].atom, &cr.vars);
      cr.steps.push_back(std::move(st));
      lit_done[i] = true;
      scheduled = true;
    }
    if (scheduled) {
      --remaining;
      continue;
    }
    // 4. Next positive internal literal, source order.
    for (size_t i = 0; i < rule.body.size() && !scheduled; ++i) {
      if (lit_done[i] || rule.body[i].negated || rule.body[i].atom.is_external()) {
        continue;
      }
      Step st;
      st.kind = Step::Kind::kMatch;
      st.index = static_cast<int>(i);
      st.atom = CompileAtom(rule.body[i].atom, &cr.vars);
      for (const CompiledArg& a : st.atom.args) {
        if (!a.is_const) bound.insert(a.slot);
      }
      cr.match_steps.push_back(static_cast<int>(cr.steps.size()));
      cr.steps.push_back(std::move(st));
      lit_done[i] = true;
      scheduled = true;
    }
    if (scheduled) {
      --remaining;
      continue;
    }
    // 5. Externals: prefer one with at least one bound/const argument.
    for (int pass = 0; pass < 2 && !scheduled; ++pass) {
      for (size_t i = 0; i < rule.body.size() && !scheduled; ++i) {
        if (lit_done[i] || rule.body[i].negated || !rule.body[i].atom.is_external()) {
          continue;
        }
        bool has_anchor = false;
        for (const Term& t : rule.body[i].atom.args) {
          if (t.is_constant() ||
              (t.is_variable() && bound.count(cr.vars.SlotOf(t.var)))) {
            has_anchor = true;
          }
        }
        if (pass == 0 && !has_anchor) continue;
        Step st;
        st.kind = Step::Kind::kExternal;
        st.index = static_cast<int>(i);
        st.atom = CompileAtom(rule.body[i].atom, &cr.vars);
        for (const CompiledArg& a : st.atom.args) {
          if (!a.is_const) bound.insert(a.slot);
        }
        cr.steps.push_back(std::move(st));
        lit_done[i] = true;
        scheduled = true;
      }
    }
    if (scheduled) {
      --remaining;
      continue;
    }
    return Status::Internal("rule scheduling stuck (unsafe rule?): " + rule.ToString());
  }

  // Compile aggregates.
  for (const AggregateSpec& g : rule.aggregates) {
    CompiledAggregate ca;
    ca.target_slot = cr.vars.SlotOf(g.target);
    ca.func = g.func;
    ca.value = g.value.get();
    for (const auto& c : g.contributors) ca.contributors.push_back(c.get());
    cr.aggregates.push_back(std::move(ca));
  }
  if (!cr.aggregates.empty() && rule.head.size() != 1) {
    return Status::FailedPrecondition("aggregate rules must have exactly one head atom: " +
                                      rule.ToString());
  }

  // Compile head; detect existential slots.
  std::set<int> head_bound = bound;
  for (const int s : cr.aggregate_target_slots) head_bound.insert(s);
  for (const int i : cr.post_assignments) {
    head_bound.insert(cr.vars.SlotOf(rule.assignments[i].target));
  }
  for (const Atom& h : rule.head) {
    CompiledAtom ch = CompileAtom(h, &cr.vars);
    for (const CompiledArg& a : ch.args) {
      if (!a.is_const && !head_bound.count(a.slot)) {
        cr.existential_slots.insert(a.slot);
      }
    }
    cr.head.push_back(std::move(ch));
  }
  if (!cr.existential_slots.empty() && !cr.aggregates.empty()) {
    return Status::FailedPrecondition(
        "a rule cannot combine existential head variables with aggregates: " +
        rule.ToString());
  }
  std::set<int> frontier;
  for (const CompiledAtom& h : cr.head) {
    for (const CompiledArg& a : h.args) {
      if (!a.is_const && head_bound.count(a.slot)) frontier.insert(a.slot);
    }
  }
  cr.frontier_slots.assign(frontier.begin(), frontier.end());
  return cr;
}

// ---------------------------------------------------------------------------
// Aggregate state
// ---------------------------------------------------------------------------

struct GroupState {
  // Per aggregate: contributor key -> current contribution (or set for
  // munion).
  std::vector<std::map<std::vector<Value>, Value>> contributions;
  std::vector<Value> last_emitted;  // last emitted aggregate values
  bool ever_emitted = false;
};

Value ComputeAggregate(const CompiledAggregate& agg,
                       const std::map<std::vector<Value>, Value>& contribs) {
  switch (agg.func) {
    case AggregateFunc::kCount:
      return Value::Int(static_cast<int64_t>(contribs.size()));
    case AggregateFunc::kSum: {
      bool all_int = true;
      double sum = 0.0;
      int64_t isum = 0;
      for (const auto& [k, v] : contribs) {
        (void)k;
        if (!v.is_int()) all_int = false;
        sum += v.as_double();
        if (v.is_int()) isum += v.as_int();
      }
      return all_int ? Value::Int(isum) : Value::Double(sum);
    }
    case AggregateFunc::kProd: {
      double prod = 1.0;
      for (const auto& [k, v] : contribs) {
        (void)k;
        prod *= v.as_double();
      }
      return Value::Double(prod);
    }
    case AggregateFunc::kMin:
    case AggregateFunc::kMax: {
      bool first = true;
      Value best;
      for (const auto& [k, v] : contribs) {
        (void)k;
        if (first || (agg.func == AggregateFunc::kMin ? v.Compare(best) < 0
                                                      : v.Compare(best) > 0)) {
          best = v;
          first = false;
        }
      }
      return best;
    }
    case AggregateFunc::kUnion: {
      std::vector<Value> items;
      for (const auto& [k, v] : contribs) {
        (void)k;
        if (v.is_set()) {
          items.insert(items.end(), v.items().begin(), v.items().end());
        } else {
          items.push_back(v);
        }
      }
      return Value::Set(std::move(items));
    }
  }
  return Value();
}

// ---------------------------------------------------------------------------
// Evaluation context
// ---------------------------------------------------------------------------

struct PendingFact {
  std::string predicate;
  std::vector<Value> row;
  Provenance prov;
};

struct PendingAction {
  int rule_index;
  std::string name;  // with '#'
  std::vector<Value> args;
  std::vector<FactId> support;
};

class Evaluator {
 public:
  Evaluator(const EngineOptions& options, const ExternalRegistry& externals,
            const Program& program, Database* db)
      : options_(options), externals_(externals), program_(program), db_(db) {}

  Result<RunStats> Run() {
    obs::Span run_span("engine.run");
    VADASA_RETURN_NOT_OK(CheckSafety(program_));
    if (options_.require_warded) {
      const WardednessReport report = AnalyzeWardedness(program_);
      if (!report.program_warded) {
        for (size_t i = 0; i < report.rules.size(); ++i) {
          if (!report.rules[i].warded) {
            return Status::FailedPrecondition(
                "program is not warded: rule " + std::to_string(i + 1) + ": " +
                report.rules[i].diagnostic);
          }
        }
      }
    }
    VADASA_ASSIGN_OR_RETURN(const StratificationResult strat, Stratify(program_));

    for (const Atom& f : program_.facts) {
      std::vector<Value> row;
      row.reserve(f.args.size());
      for (const Term& t : f.args) row.push_back(t.constant);
      db_->AddFact(f.predicate, std::move(row));
    }

    compiled_.reserve(program_.rules.size());
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      VADASA_ASSIGN_OR_RETURN(CompiledRule cr,
                              CompileRule(program_.rules[i], static_cast<int>(i)));
      compiled_.push_back(std::move(cr));
    }
    agg_state_.resize(compiled_.size());
    action_seen_.resize(compiled_.size());
    stats_.rule_firings.assign(compiled_.size(), 0);

    for (int s = 0; s < strat.num_strata; ++s) {
      obs::Span stratum_span("engine.stratum");
      VADASA_RETURN_NOT_OK(RunStratum(strat.rules_by_stratum[s]));
    }
    VADASA_METRIC_COUNT("vadalog.runs", 1);
    VADASA_METRIC_COUNT("vadalog.rounds", stats_.rounds);
    VADASA_METRIC_COUNT("vadalog.facts_derived", stats_.facts_derived);
    VADASA_METRIC_COUNT("vadalog.nulls_created", stats_.nulls_created);
    VADASA_METRIC_COUNT("vadalog.egd_substitutions", stats_.egd_substitutions);
    return stats_;
  }

 private:
  // Per-predicate row count before the previous round (delta = [prev, cur)).
  using Watermarks = std::unordered_map<std::string, size_t>;

  size_t RelationSize(const std::string& pred) const {
    const Relation* rel = db_->relation(pred);
    return rel == nullptr ? 0 : rel->size();
  }

  Status RunStratum(const std::vector<int>& rule_indices) {
    prev_marks_.clear();
    bool first_round = true;
    for (size_t round = 0;; ++round) {
      if (round > options_.max_rounds) {
        return Status::LimitExceeded("chase exceeded max_rounds=" +
                                     std::to_string(options_.max_rounds));
      }
      obs::Span round_span("engine.round");
      ++stats_.rounds;
      // Snapshot current sizes: rows >= prev_marks_ are the delta.
      cur_marks_.clear();
      for (const std::string& p : db_->Predicates()) cur_marks_[p] = RelationSize(p);

      pending_.clear();
      pending_keys_.clear();
      pending_actions_.clear();
      egd_substitutions_.clear();

      for (const int ri : rule_indices) {
        CompiledRule& cr = compiled_[ri];
        if (cr.match_steps.empty()) {
          if (first_round) {
            VADASA_RETURN_NOT_OK(EvaluateRule(&cr, /*delta_step=*/-1));
          }
          continue;
        }
        for (const int step_idx : cr.match_steps) {
          const std::string& pred = cr.steps[step_idx].atom.predicate;
          const size_t prev = prev_marks_.count(pred) ? prev_marks_[pred] : 0;
          const size_t cur = cur_marks_.count(pred) ? cur_marks_[pred] : RelationSize(pred);
          if (!first_round && prev >= cur) continue;  // Empty delta.
          VADASA_RETURN_NOT_OK(EvaluateRule(&cr, step_idx));
          if (first_round) break;  // Round 0: delta = everything; one pass is enough.
        }
      }

      // Apply EGD substitutions (rewrites the database).
      bool changed = false;
      if (!egd_substitutions_.empty()) {
        db_->SubstituteNulls(egd_substitutions_);
        stats_.egd_substitutions += egd_substitutions_.size();
        // Conservative restart of the stratum: everything is delta again.
        prev_marks_.clear();
        for (auto& st : agg_state_) st.clear();
        changed = true;
        first_round = true;
        // Re-queue pending facts (they may mention substituted nulls).
        for (PendingFact& pf : pending_) {
          for (Value& v : pf.row) {
            int guard = 0;
            while (v.is_null() && guard++ < 64) {
              auto it = egd_substitutions_.find(v.null_label());
              if (it == egd_substitutions_.end()) break;
              v = it->second;
            }
          }
        }
      }

      // Insert pending head facts.
      for (PendingFact& pf : pending_) {
        if (db_->size() >= options_.max_facts) {
          return Status::LimitExceeded("chase exceeded max_facts=" +
                                       std::to_string(options_.max_facts));
        }
        const size_t before = db_->size();
        db_->AddFact(pf.predicate, std::move(pf.row),
                     options_.track_provenance ? std::move(pf.prov) : Provenance{});
        if (db_->size() > before) {
          ++stats_.facts_derived;
          changed = true;
        }
      }

      // Invoke queued external actions against the settled database.
      for (PendingAction& pa : pending_actions_) {
        const ExternalActionFn* fn = externals_.FindAction(pa.name);
        if (fn == nullptr) {
          return Status::NotFound("external action not registered: " + pa.name);
        }
        std::vector<std::pair<std::string, std::vector<Value>>> emitted;
        ActionContext ctx(db_, &emitted);
        VADASA_RETURN_NOT_OK((*fn)(pa.args, &ctx));
        ++stats_.action_invocations;
        for (auto& [pred, row] : emitted) {
          if (db_->size() >= options_.max_facts) {
            return Status::LimitExceeded("chase exceeded max_facts");
          }
          const size_t before = db_->size();
          Provenance prov;
          if (options_.track_provenance) {
            prov.rule_index = pa.rule_index;
            prov.support = pa.support;
          }
          db_->AddFact(pred, std::move(row), std::move(prov));
          if (db_->size() > before) {
            ++stats_.facts_derived;
            changed = true;
          }
        }
      }

      if (!changed && !first_round) break;
      if (!changed && first_round && round > 0) break;
      prev_marks_ = cur_marks_;
      if (!egd_substitutions_.empty()) {
        prev_marks_.clear();  // After substitution, re-derive from scratch.
      }
      if (first_round && egd_substitutions_.empty()) first_round = false;
      if (!changed) break;
    }
    return Status::OK();
  }

  // --- Rule evaluation -----------------------------------------------------

  Status EvaluateRule(CompiledRule* cr, int delta_step) {
    slots_.assign(cr->vars.names.size(), Value());
    bound_.assign(cr->vars.names.size(), false);
    support_.clear();
    return EvalStep(cr, 0, delta_step);
  }

  Status EvalStep(CompiledRule* cr, size_t step_idx, int delta_step) {
    if (step_idx == cr->steps.size()) return EmitBinding(cr);
    const Step& st = cr->steps[step_idx];
    switch (st.kind) {
      case Step::Kind::kMatch:
        return EvalMatch(cr, step_idx, delta_step);
      case Step::Kind::kExternal:
        return EvalExternal(cr, step_idx, delta_step);
      case Step::Kind::kNegated: {
        std::vector<Value> row;
        row.reserve(st.atom.args.size());
        for (const CompiledArg& a : st.atom.args) {
          row.push_back(a.is_const ? a.constant : slots_[a.slot]);
        }
        if (db_->Contains(st.atom.predicate, row)) return Status::OK();
        return EvalStep(cr, step_idx + 1, delta_step);
      }
      case Step::Kind::kAssign: {
        const Assignment& asg = cr->rule->assignments[st.index];
        VADASA_ASSIGN_OR_RETURN(Value v, EvalExpr(*asg.expr, Lookup(cr)));
        const int slot = cr->vars.Find(asg.target);
        slots_[slot] = std::move(v);
        bound_[slot] = true;
        const Status s = EvalStep(cr, step_idx + 1, delta_step);
        bound_[slot] = false;
        return s;
      }
      case Step::Kind::kAssignCheck: {
        const Assignment& asg = cr->rule->assignments[st.index];
        VADASA_ASSIGN_OR_RETURN(Value v, EvalExpr(*asg.expr, Lookup(cr)));
        const int slot = cr->vars.Find(asg.target);
        if (!slots_[slot].Equals(v)) return Status::OK();
        return EvalStep(cr, step_idx + 1, delta_step);
      }
      case Step::Kind::kCondition: {
        const Condition& cond = cr->rule->conditions[st.index];
        auto ok = EvalCondition(cond, Lookup(cr));
        if (!ok.ok()) {
          // Treat evaluation errors on this binding (e.g. get() on a missing
          // key) as a failed match rather than a fatal error.
          if (ok.status().code() == StatusCode::kNotFound) return Status::OK();
          return ok.status();
        }
        if (!ok.value()) return Status::OK();
        return EvalStep(cr, step_idx + 1, delta_step);
      }
    }
    return Status::Internal("unknown step kind");
  }

  VarLookup Lookup(CompiledRule* cr) {
    return [this, cr](const std::string& name) -> const Value* {
      const int slot = cr->vars.Find(name);
      if (slot < 0 || !bound_[slot]) return nullptr;
      return &slots_[slot];
    };
  }

  Status EvalMatch(CompiledRule* cr, size_t step_idx, int delta_step) {
    const Step& st = cr->steps[step_idx];
    const Relation* rel = db_->relation(st.atom.predicate);
    if (rel == nullptr) return Status::OK();
    // Rows visible this round: [0, cur_mark); delta: [prev_mark, cur_mark).
    const size_t cur =
        cur_marks_.count(st.atom.predicate) ? cur_marks_[st.atom.predicate] : rel->size();
    size_t lo = 0;
    if (static_cast<int>(step_idx) == delta_step) {
      lo = prev_marks_.count(st.atom.predicate) ? prev_marks_[st.atom.predicate] : 0;
    }
    // Candidate selection: first const/bound arg, if any, via column index.
    int sel_col = -1;
    const Value* sel_val = nullptr;
    for (size_t i = 0; i < st.atom.args.size(); ++i) {
      const CompiledArg& a = st.atom.args[i];
      if (a.is_const) {
        sel_col = static_cast<int>(i);
        sel_val = &a.constant;
        break;
      }
      if (bound_[a.slot]) {
        sel_col = static_cast<int>(i);
        sel_val = &slots_[a.slot];
        break;
      }
    }
    auto try_row = [&](size_t r) -> Status {
      const std::vector<Value>& row = rel->row(r);
      if (row.size() != st.atom.args.size()) return Status::OK();
      // Verify + bind.
      std::vector<int> newly_bound;
      bool ok = true;
      for (size_t i = 0; i < st.atom.args.size() && ok; ++i) {
        const CompiledArg& a = st.atom.args[i];
        if (a.is_const) {
          ok = a.constant.Equals(row[i]);
        } else if (bound_[a.slot]) {
          ok = slots_[a.slot].Equals(row[i]);
        } else {
          slots_[a.slot] = row[i];
          bound_[a.slot] = true;
          newly_bound.push_back(a.slot);
        }
      }
      Status s = Status::OK();
      if (ok) {
        support_.push_back(rel->fact_id(r));
        s = EvalStep(cr, step_idx + 1, delta_step);
        support_.pop_back();
      }
      for (const int slot : newly_bound) bound_[slot] = false;
      return s;
    };
    if (sel_col >= 0) {
      // Hash candidates (may contain collisions; try_row verifies).
      const std::vector<uint32_t>& candidates =
          rel->RowsWithValue(static_cast<size_t>(sel_col), *sel_val);
      for (const uint32_t r : candidates) {
        if (r < lo || r >= cur) continue;
        VADASA_RETURN_NOT_OK(try_row(r));
      }
      return Status::OK();
    }
    for (size_t r = lo; r < cur; ++r) {
      VADASA_RETURN_NOT_OK(try_row(r));
    }
    return Status::OK();
  }

  Status EvalExternal(CompiledRule* cr, size_t step_idx, int delta_step) {
    const Step& st = cr->steps[step_idx];
    const ExternalPredicateFn* fn = externals_.FindPredicate(st.atom.predicate);
    if (fn == nullptr) {
      return Status::NotFound("external predicate not registered: " + st.atom.predicate);
    }
    std::vector<std::optional<Value>> bound_args(st.atom.args.size());
    for (size_t i = 0; i < st.atom.args.size(); ++i) {
      const CompiledArg& a = st.atom.args[i];
      if (a.is_const) {
        bound_args[i] = a.constant;
      } else if (bound_[a.slot]) {
        bound_args[i] = slots_[a.slot];
      }
    }
    VADASA_ASSIGN_OR_RETURN(auto rows, (*fn)(bound_args, *db_));
    for (const std::vector<Value>& row : rows) {
      if (row.size() != st.atom.args.size()) {
        return Status::Internal("external " + st.atom.predicate +
                                " returned a row of wrong arity");
      }
      std::vector<int> newly_bound;
      bool ok = true;
      for (size_t i = 0; i < st.atom.args.size() && ok; ++i) {
        const CompiledArg& a = st.atom.args[i];
        if (a.is_const) {
          ok = a.constant.Equals(row[i]);
        } else if (bound_[a.slot]) {
          ok = slots_[a.slot].Equals(row[i]);
        } else {
          slots_[a.slot] = row[i];
          bound_[a.slot] = true;
          newly_bound.push_back(a.slot);
        }
      }
      Status s = Status::OK();
      if (ok) s = EvalStep(cr, step_idx + 1, delta_step);
      for (const int slot : newly_bound) bound_[slot] = false;
      VADASA_RETURN_NOT_OK(s);
    }
    return Status::OK();
  }

  // --- Emission ------------------------------------------------------------

  Status EmitBinding(CompiledRule* cr) {
    ++stats_.rule_firings[cr->rule_index];
    if (cr->is_egd) return EmitEgd(cr);
    if (!cr->aggregates.empty()) return EmitAggregate(cr);
    return EmitHeads(cr);
  }

  Status EmitEgd(CompiledRule* cr) {
    const Value& a = slots_[cr->egd_lhs_slot];
    const Value& b = slots_[cr->egd_rhs_slot];
    if (a.Equals(b)) return Status::OK();
    if (a.is_null() && b.is_null()) {
      const uint64_t hi = std::max(a.null_label(), b.null_label());
      const uint64_t lo = std::min(a.null_label(), b.null_label());
      egd_substitutions_[hi] = Value::Null(lo);
      return Status::OK();
    }
    if (a.is_null()) {
      egd_substitutions_[a.null_label()] = b;
      return Status::OK();
    }
    if (b.is_null()) {
      egd_substitutions_[b.null_label()] = a;
      return Status::OK();
    }
    const std::string msg = "EGD " + cr->rule->ToString() + " equates distinct constants " +
                            a.ToString() + " and " + b.ToString();
    if (options_.egd_mode == EgdMode::kCollect) {
      stats_.egd_violations.push_back(msg);
      return Status::OK();
    }
    return Status::EgdViolation(msg);
  }

  Status EmitAggregate(CompiledRule* cr) {
    // Group key: head args that are not aggregate targets.
    const CompiledAtom& h = cr->head[0];
    std::vector<Value> group_key;
    for (const CompiledArg& a : h.args) {
      if (a.is_const) {
        group_key.push_back(a.constant);
      } else if (!cr->post_slots.count(a.slot)) {
        if (!bound_[a.slot]) {
          return Status::FailedPrecondition(
              "aggregate rule head uses unbound non-aggregate variable " +
              cr->vars.names[a.slot] + ": " + cr->rule->ToString());
        }
        group_key.push_back(slots_[a.slot]);
      }
    }
    auto& groups = agg_state_[cr->rule_index];
    auto it = groups.find(group_key);
    if (it == groups.end()) {
      GroupState gs;
      gs.contributions.resize(cr->aggregates.size());
      gs.last_emitted.resize(cr->aggregates.size());
      it = groups.emplace(std::move(group_key), std::move(gs)).first;
    }
    GroupState& gs = it->second;

    bool any_change = false;
    for (size_t gi = 0; gi < cr->aggregates.size(); ++gi) {
      const CompiledAggregate& agg = cr->aggregates[gi];
      std::vector<Value> contrib_key;
      for (const Expr* c : agg.contributors) {
        VADASA_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, Lookup(cr)));
        contrib_key.push_back(std::move(v));
      }
      Value contribution = Value::Int(1);
      if (agg.value != nullptr) {
        VADASA_ASSIGN_OR_RETURN(contribution, EvalExpr(*agg.value, Lookup(cr)));
      }
      auto& contribs = gs.contributions[gi];
      if (agg.func == AggregateFunc::kUnion && agg.contributors.empty()) {
        // Contributor-free munion: each contribution is its own contributor.
        contrib_key.push_back(contribution);
      }
      auto cit = contribs.find(contrib_key);
      if (cit == contribs.end()) {
        contribs.emplace(std::move(contrib_key), std::move(contribution));
        any_change = true;
      } else {
        // Contributor replacement: keep the extremal contribution so that the
        // "least risk" version wins (Section 4.3).
        bool replace = false;
        switch (agg.func) {
          case AggregateFunc::kSum:
          case AggregateFunc::kProd:
          case AggregateFunc::kMax:
          case AggregateFunc::kCount:
            replace = contribution.Compare(cit->second) > 0;
            break;
          case AggregateFunc::kMin:
            replace = contribution.Compare(cit->second) < 0;
            break;
          case AggregateFunc::kUnion: {
            // Merge into the contributor's set.
            std::vector<Value> merged;
            auto add = [&merged](const Value& v) {
              if (v.is_set()) {
                merged.insert(merged.end(), v.items().begin(), v.items().end());
              } else {
                merged.push_back(v);
              }
            };
            add(cit->second);
            add(contribution);
            Value v = Value::Set(std::move(merged));
            if (!v.Equals(cit->second)) {
              cit->second = std::move(v);
              any_change = true;
            }
            replace = false;
            break;
          }
        }
        if (replace) {
          cit->second = std::move(contribution);
          any_change = true;
        }
      }
    }
    if (!any_change && gs.ever_emitted) return Status::OK();

    // Compute aggregate values and bind the targets.
    std::vector<Value> agg_values(cr->aggregates.size());
    bool value_changed = !gs.ever_emitted;
    for (size_t gi = 0; gi < cr->aggregates.size(); ++gi) {
      agg_values[gi] = ComputeAggregate(cr->aggregates[gi], gs.contributions[gi]);
      if (!gs.ever_emitted || !agg_values[gi].Equals(gs.last_emitted[gi])) {
        value_changed = true;
      }
    }
    if (!value_changed) return Status::OK();
    gs.last_emitted = agg_values;
    gs.ever_emitted = true;

    std::vector<int> temp_bound;
    for (size_t gi = 0; gi < cr->aggregates.size(); ++gi) {
      const int slot = cr->aggregates[gi].target_slot;
      slots_[slot] = agg_values[gi];
      if (!bound_[slot]) {
        bound_[slot] = true;
        temp_bound.push_back(slot);
      }
    }
    Status s = EmitPostAndHeads(cr);
    for (const int slot : temp_bound) bound_[slot] = false;
    return s;
  }

  Status EmitPostAndHeads(CompiledRule* cr) {
    std::vector<int> temp_bound;
    Status result = Status::OK();
    bool pass = true;
    for (const int i : cr->post_assignments) {
      const Assignment& asg = cr->rule->assignments[i];
      auto v = EvalExpr(*asg.expr, Lookup(cr));
      if (!v.ok()) {
        result = v.status();
        pass = false;
        break;
      }
      const int slot = cr->vars.Find(asg.target);
      slots_[slot] = std::move(v).value();
      if (!bound_[slot]) {
        bound_[slot] = true;
        temp_bound.push_back(slot);
      }
    }
    if (pass) {
      for (const int i : cr->post_conditions) {
        auto ok = EvalCondition(cr->rule->conditions[i], Lookup(cr));
        if (!ok.ok()) {
          result = ok.status();
          pass = false;
          break;
        }
        if (!ok.value()) {
          pass = false;
          break;
        }
      }
    }
    if (pass) result = EmitHeads(cr);
    for (const int slot : temp_bound) bound_[slot] = false;
    return result;
  }

  Status EmitHeads(CompiledRule* cr) {
    // Bind existential slots via memoized Skolem terms.
    std::vector<int> temp_bound;
    if (!cr->existential_slots.empty()) {
      std::vector<Value> frontier;
      frontier.reserve(cr->frontier_slots.size());
      for (const int s : cr->frontier_slots) frontier.push_back(slots_[s]);
      if (options_.restricted_chase && cr->head.size() == 1 && !cr->head[0].external) {
        // The termination check is only timed under tracing: two clock reads
        // per emission are measurable on the existential hot path.
        if (obs::TracingEnabled()) {
          const auto t0 = std::chrono::steady_clock::now();
          const bool satisfied = HeadSatisfied(cr);
          stats_.termination_check_seconds +=
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
          if (satisfied) return Status::OK();
        } else if (HeadSatisfied(cr)) {
          return Status::OK();
        }
      }
      for (const int slot : cr->existential_slots) {
        std::vector<Value> key = frontier;
        key.push_back(Value::Int(cr->rule_index));
        key.push_back(Value::String(cr->vars.names[slot]));
        auto it = skolem_.find(key);
        uint64_t label;
        if (it == skolem_.end()) {
          label = db_->FreshNullLabel();
          skolem_.emplace(std::move(key), label);
          ++stats_.nulls_created;
        } else {
          label = it->second;
        }
        slots_[slot] = Value::Null(label);
        if (!bound_[slot]) {
          bound_[slot] = true;
          temp_bound.push_back(slot);
        }
      }
    }
    Status result = Status::OK();
    for (const CompiledAtom& h : cr->head) {
      std::vector<Value> row;
      row.reserve(h.args.size());
      for (const CompiledArg& a : h.args) {
        row.push_back(a.is_const ? a.constant : slots_[a.slot]);
      }
      if (h.external) {
        QueueAction(cr, h.predicate, std::move(row));
      } else {
        QueueFact(cr, h.predicate, std::move(row));
      }
    }
    for (const int slot : temp_bound) bound_[slot] = false;
    return result;
  }

  /// Restricted-chase check: does a fact already satisfy the (single) head
  /// atom with the current universal bindings (existential positions free)?
  bool HeadSatisfied(CompiledRule* cr) {
    const CompiledAtom& h = cr->head[0];
    const Relation* rel = db_->relation(h.predicate);
    auto row_matches = [&](const std::vector<Value>& row) {
      if (row.size() != h.args.size()) return false;
      for (size_t i = 0; i < h.args.size(); ++i) {
        const CompiledArg& a = h.args[i];
        if (a.is_const) {
          if (!a.constant.Equals(row[i])) return false;
        } else if (!cr->existential_slots.count(a.slot)) {
          if (!slots_[a.slot].Equals(row[i])) return false;
        }
      }
      return true;
    };
    if (rel != nullptr) {
      // Use an index on the first universal position if possible.
      int sel_col = -1;
      const Value* sel_val = nullptr;
      for (size_t i = 0; i < h.args.size(); ++i) {
        const CompiledArg& a = h.args[i];
        if (a.is_const) {
          sel_col = static_cast<int>(i);
          sel_val = &a.constant;
          break;
        }
        if (!cr->existential_slots.count(a.slot)) {
          sel_col = static_cast<int>(i);
          sel_val = &slots_[a.slot];
          break;
        }
      }
      if (sel_col >= 0) {
        for (const uint32_t r : rel->RowsWithValue(sel_col, *sel_val)) {
          if (row_matches(rel->row(r))) return true;
        }
      } else {
        for (const auto& row : rel->rows()) {
          if (row_matches(row)) return true;
        }
      }
    }
    // Facts still pending in this round are not scanned: re-derivations of
    // the same binding are already folded by the Skolem memo, and a
    // different rule satisfying the head within the same round merely costs
    // one extra null (still a correct chase) — scanning the pending buffer
    // here would make existential rounds quadratic.
    return false;
  }

  void QueueFact(CompiledRule* cr, const std::string& predicate, std::vector<Value> row) {
    if (db_->Contains(predicate, row)) return;
    // Dedup within the round (hash first, verify on hit).
    const size_t key = std::hash<std::string>()(predicate) * 31 + HashValues(row);
    if (pending_keys_.count(key) > 0) {
      for (const PendingFact& pf : pending_) {
        if (pf.predicate != predicate || pf.row.size() != row.size()) continue;
        bool eq = true;
        for (size_t i = 0; i < row.size(); ++i) {
          if (!pf.row[i].Equals(row[i])) {
            eq = false;
            break;
          }
        }
        if (eq) return;
      }
    }
    pending_keys_.insert(key);
    PendingFact pf;
    pf.predicate = predicate;
    pf.row = std::move(row);
    if (options_.track_provenance) {
      pf.prov.rule_index = cr->rule_index;
      pf.prov.support = support_;
    }
    pending_.push_back(std::move(pf));
  }

  void QueueAction(CompiledRule* cr, const std::string& name, std::vector<Value> args) {
    // Dedup per rule on the full current binding, so re-derivations of the
    // same body do not retrigger the action, but new bindings (e.g. a new
    // anonymized tuple version) do.
    std::vector<Value> binding;
    binding.reserve(slots_.size());
    for (size_t i = 0; i < slots_.size(); ++i) {
      binding.push_back(bound_[i] ? slots_[i] : Value::String("<unbound>"));
    }
    auto& seen = action_seen_[cr->rule_index];
    if (!seen.emplace(std::move(binding)).second) return;
    PendingAction pa;
    pa.rule_index = cr->rule_index;
    pa.name = name;
    pa.args = std::move(args);
    pa.support = support_;
    pending_actions_.push_back(std::move(pa));
  }

  struct ValueVecLess {
    bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };

  const EngineOptions& options_;
  const ExternalRegistry& externals_;
  const Program& program_;
  Database* db_;

  std::vector<CompiledRule> compiled_;
  std::vector<std::map<std::vector<Value>, GroupState, ValueVecLess>> agg_state_;
  std::vector<std::set<std::vector<Value>, ValueVecLess>> action_seen_;
  std::map<std::vector<Value>, uint64_t, ValueVecLess> skolem_;

  Watermarks prev_marks_;
  Watermarks cur_marks_;

  // Per-binding scratch.
  std::vector<Value> slots_;
  std::vector<char> bound_;
  std::vector<FactId> support_;

  // Per-round buffers.
  std::vector<PendingFact> pending_;
  std::unordered_set<size_t> pending_keys_;
  std::vector<PendingAction> pending_actions_;
  std::unordered_map<uint64_t, Value> egd_substitutions_;

  RunStats stats_;
};

}  // namespace

Result<RunStats> Engine::Run(const Program& program, Database* db) {
  Evaluator evaluator(options_, externals_, program, db);
  return evaluator.Run();
}

Result<RunStats> RunSource(const std::string& source, Database* db, Engine* engine) {
  VADASA_ASSIGN_OR_RETURN(const Program program, Parse(source));
  return engine->Run(program, db);
}

std::vector<std::vector<Value>> FinalAggregateRows(const Database& db,
                                                   const std::string& predicate,
                                                   size_t value_col, bool take_max) {
  std::map<std::vector<Value>, std::vector<Value>> best;
  for (const auto& row : db.Rows(predicate)) {
    if (value_col >= row.size()) continue;
    std::vector<Value> key;
    key.reserve(row.size() - 1);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != value_col) key.push_back(row[i]);
    }
    auto it = best.find(key);
    if (it == best.end()) {
      best.emplace(std::move(key), row);
    } else {
      const int c = row[value_col].Compare(it->second[value_col]);
      if ((take_max && c > 0) || (!take_max && c < 0)) it->second = row;
    }
  }
  std::vector<std::vector<Value>> out;
  out.reserve(best.size());
  for (auto& [k, v] : best) {
    (void)k;
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace vadasa::vadalog
