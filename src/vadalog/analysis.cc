#include "vadalog/analysis.h"

#include <algorithm>

namespace vadasa::vadalog {

namespace {

std::set<std::string> PositiveBodyVars(const Rule& rule) {
  std::set<std::string> out;
  for (const Literal& lit : rule.body) {
    if (lit.negated || lit.atom.is_external()) continue;
    for (const Term& t : lit.atom.args) {
      if (t.is_variable()) out.insert(t.var);
    }
  }
  return out;
}

}  // namespace

Status CheckSafety(const Program& program) {
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    const std::string where = "rule " + std::to_string(r + 1) +
                              (rule.label.empty() ? "" : " (" + rule.label + ")");
    std::set<std::string> bound = PositiveBodyVars(rule);
    // External body literals can bind their variables too (they emit rows).
    for (const Literal& lit : rule.body) {
      if (!lit.negated && lit.atom.is_external()) {
        for (const Term& t : lit.atom.args) {
          if (t.is_variable()) bound.insert(t.var);
        }
      }
    }
    // Assignments bind their targets in order; their inputs must be bound or
    // assigned earlier.
    std::set<std::string> assignable = bound;
    for (const Assignment& a : rule.assignments) {
      std::vector<std::string> vars;
      a.expr->CollectVars(&vars);
      for (const std::string& v : vars) {
        // Aggregate targets are bound before post-assignments; accept them.
        bool is_agg_target = false;
        for (const AggregateSpec& g : rule.aggregates) {
          if (g.target == v) is_agg_target = true;
        }
        if (!assignable.count(v) && !is_agg_target) {
          return Status::FailedPrecondition(where + ": assignment to " + a.target +
                                            " uses unbound variable " + v);
        }
      }
      assignable.insert(a.target);
    }
    for (const AggregateSpec& g : rule.aggregates) {
      std::vector<std::string> vars;
      if (g.value) g.value->CollectVars(&vars);
      for (const auto& c : g.contributors) c->CollectVars(&vars);
      for (const std::string& v : vars) {
        if (!assignable.count(v)) {
          return Status::FailedPrecondition(where + ": aggregate " + g.target +
                                            " uses unbound variable " + v);
        }
      }
      assignable.insert(g.target);
    }
    for (const Condition& c : rule.conditions) {
      std::vector<std::string> vars;
      c.lhs->CollectVars(&vars);
      c.rhs->CollectVars(&vars);
      for (const std::string& v : vars) {
        if (!assignable.count(v)) {
          return Status::FailedPrecondition(where + ": condition uses unbound variable " +
                                            v);
        }
      }
    }
    for (const Literal& lit : rule.body) {
      if (!lit.negated) continue;
      for (const Term& t : lit.atom.args) {
        if (t.is_variable() && !bound.count(t.var)) {
          return Status::FailedPrecondition(where + ": negated literal " +
                                            lit.ToString() + " uses unbound variable " +
                                            t.var);
        }
      }
    }
    if (rule.is_egd) {
      if (!assignable.count(rule.egd_lhs) || !assignable.count(rule.egd_rhs)) {
        return Status::FailedPrecondition(where + ": EGD head variables must be bound");
      }
    }
  }
  return Status::OK();
}

Result<StratificationResult> Stratify(const Program& program) {
  StratificationResult result;
  auto& stratum = result.stratum;
  auto touch = [&](const std::string& p) {
    stratum.emplace(p, 0);
  };
  for (const Atom& f : program.facts) touch(f.predicate);
  for (const Rule& r : program.rules) {
    for (const Atom& h : r.head) touch(h.predicate);
    for (const Literal& l : r.body) touch(l.atom.predicate);
  }
  const int n = static_cast<int>(stratum.size());
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    if (++guard > n * static_cast<int>(program.rules.size()) + n + 2) {
      return Status::FailedPrecondition(
          "program is not stratifiable: negation through recursion");
    }
    for (const Rule& r : program.rules) {
      int body_req = 0;
      for (const Literal& l : r.body) {
        const int s = stratum[l.atom.predicate];
        body_req = std::max(body_req, l.negated ? s + 1 : s);
      }
      for (const Atom& h : r.head) {
        if (stratum[h.predicate] < body_req) {
          stratum[h.predicate] = body_req;
          changed = true;
          if (body_req > n) {
            return Status::FailedPrecondition(
                "program is not stratifiable: negation through recursion involving " +
                h.predicate);
          }
        }
      }
      // EGDs have no head predicate; nothing to raise.
    }
  }
  int max_stratum = 0;
  for (const auto& [p, s] : stratum) {
    (void)p;
    max_stratum = std::max(max_stratum, s);
  }
  result.num_strata = max_stratum + 1;
  result.rules_by_stratum.assign(result.num_strata, {});
  for (size_t i = 0; i < program.rules.size(); ++i) {
    const Rule& r = program.rules[i];
    int s = 0;
    if (r.is_egd || r.head.empty()) {
      // EGDs and action-only rules run at the stratum of their body.
      for (const Literal& l : r.body) {
        s = std::max(s, stratum[l.atom.predicate]);
      }
    } else {
      for (const Atom& h : r.head) s = std::max(s, stratum[h.predicate]);
      // External (action) heads carry no stratum; fall back to body stratum.
      bool all_external = true;
      for (const Atom& h : r.head) {
        if (!h.is_external()) all_external = false;
      }
      if (all_external) {
        s = 0;
        for (const Literal& l : r.body) s = std::max(s, stratum[l.atom.predicate]);
      }
    }
    result.rules_by_stratum[s].push_back(static_cast<int>(i));
  }
  return result;
}

WardednessReport AnalyzeWardedness(const Program& program) {
  WardednessReport report;
  // --- Step 1: affected positions (fixpoint). ---
  std::set<Position>& affected = report.affected_positions;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      if (rule.is_egd) continue;
      // Variables bound by body / assignments.
      std::set<std::string> bound = PositiveBodyVars(rule);
      for (const Assignment& a : rule.assignments) bound.insert(a.target);
      for (const AggregateSpec& g : rule.aggregates) bound.insert(g.target);
      // Harmful body variables: occur in body only at affected positions.
      std::set<std::string> harmful;
      {
        std::map<std::string, bool> seen_unaffected;
        for (const Literal& lit : rule.body) {
          if (lit.negated) continue;
          for (size_t i = 0; i < lit.atom.args.size(); ++i) {
            const Term& t = lit.atom.args[i];
            if (!t.is_variable()) continue;
            const bool aff = affected.count({lit.atom.predicate, i}) > 0;
            auto [it, inserted] = seen_unaffected.emplace(t.var, !aff);
            if (!inserted && !aff) it->second = true;
          }
        }
        for (const auto& [v, has_unaffected] : seen_unaffected) {
          if (!has_unaffected) harmful.insert(v);
        }
      }
      for (const Atom& h : rule.head) {
        for (size_t i = 0; i < h.args.size(); ++i) {
          const Term& t = h.args[i];
          if (!t.is_variable()) continue;
          const bool existential = !bound.count(t.var);
          const bool propagates_null = harmful.count(t.var) > 0;
          if (existential || propagates_null) {
            if (affected.insert({h.predicate, i}).second) changed = true;
          }
        }
      }
    }
  }
  // --- Step 2: per-rule ward check. ---
  for (const Rule& rule : program.rules) {
    WardednessReport::RuleReport rr;
    if (rule.is_egd) {
      report.rules.push_back(rr);
      continue;
    }
    // Harmful vars again, against the final affected set.
    std::map<std::string, bool> has_unaffected_occurrence;
    for (const Literal& lit : rule.body) {
      if (lit.negated) continue;
      for (size_t i = 0; i < lit.atom.args.size(); ++i) {
        const Term& t = lit.atom.args[i];
        if (!t.is_variable()) continue;
        const bool aff = affected.count({lit.atom.predicate, i}) > 0;
        auto [it, inserted] = has_unaffected_occurrence.emplace(t.var, !aff);
        if (!inserted && !aff) it->second = true;
      }
    }
    std::set<std::string> harmful;
    for (const auto& [v, unaffected] : has_unaffected_occurrence) {
      if (!unaffected) harmful.insert(v);
    }
    std::set<std::string> head_vars;
    for (const Atom& h : rule.head) {
      for (const Term& t : h.args) {
        if (t.is_variable()) head_vars.insert(t.var);
      }
    }
    std::set<std::string> dangerous;
    for (const std::string& v : harmful) {
      if (head_vars.count(v)) dangerous.insert(v);
    }
    rr.dangerous_vars.assign(dangerous.begin(), dangerous.end());
    if (!dangerous.empty()) {
      // All dangerous vars must live in exactly one body atom (the ward)...
      int ward = -1;
      for (size_t b = 0; b < rule.body.size(); ++b) {
        if (rule.body[b].negated) continue;
        std::set<std::string> atom_vars;
        for (const Term& t : rule.body[b].atom.args) {
          if (t.is_variable()) atom_vars.insert(t.var);
        }
        bool covers_all = true;
        for (const std::string& v : dangerous) {
          if (!atom_vars.count(v)) covers_all = false;
        }
        if (covers_all) {
          ward = static_cast<int>(b);
          break;
        }
      }
      if (ward < 0) {
        rr.warded = false;
        rr.diagnostic = "dangerous variables not confined to a single atom";
      } else {
        rr.ward = ward;
        // ...and dangerous vars must not occur in any other body atom, and the
        // ward may share only harmless variables with the rest of the body.
        for (size_t b = 0; b < rule.body.size() && rr.warded; ++b) {
          if (static_cast<int>(b) == ward || rule.body[b].negated) continue;
          for (const Term& t : rule.body[b].atom.args) {
            if (!t.is_variable()) continue;
            if (dangerous.count(t.var)) {
              rr.warded = false;
              rr.diagnostic = "dangerous variable " + t.var + " occurs outside the ward";
              break;
            }
            if (harmful.count(t.var)) {
              // Shared harmful (but not dangerous) var between ward and
              // another atom: check whether the ward also uses it.
              bool in_ward = false;
              for (const Term& wt : rule.body[ward].atom.args) {
                if (wt.is_variable() && wt.var == t.var) in_ward = true;
              }
              if (in_ward) {
                rr.warded = false;
                rr.diagnostic =
                    "ward shares harmful variable " + t.var + " with another atom";
                break;
              }
            }
          }
        }
      }
    }
    if (!rr.warded) report.program_warded = false;
    report.rules.push_back(std::move(rr));
  }
  return report;
}

}  // namespace vadasa::vadalog
