#ifndef VADASA_VADALOG_EXPR_EVAL_H_
#define VADASA_VADALOG_EXPR_EVAL_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "common/value.h"
#include "vadalog/ast.h"

namespace vadasa::vadalog {

/// Resolves a variable name to its bound value; returns nullptr when unbound.
using VarLookup = std::function<const Value*(const std::string&)>;

/// Evaluates an expression under a binding. Unbound variables and type
/// mismatches are errors.
///
/// Builtin functions (beyond + - * /):
///   scalar:  abs, min, max, mod, pow, sqrt, floor, ceil, round
///   logic:   if(c,a,b), and, or, not, lt, le, gt, ge, eq, ne, maybe_eq
///   string:  concat, lower, upper, strlen, similarity(a,b) in [0,1]
///   values:  is_null(x), null_label(x), to_string(x)
///   collect: list(...), set(...), size, union, intersection, difference,
///            contains(coll,x), first(p), second(p), pair(a,b),
///            get(pairset,key), with(pairset,key,v), without(pairset,key),
///            keys(pairset), values(pairset), project(pairset,keyset)
/// A "pairset" is a set of 2-element lists (name,value) — the paper's VSet.
Result<Value> EvalExpr(const Expr& expr, const VarLookup& lookup);

/// Evaluates a condition to true/false under a binding.
/// Equality (kEq) uses strict Value equality; use the `maybe_eq` builtin for
/// the =⊥ maybe-match relation.
Result<bool> EvalCondition(const Condition& cond, const VarLookup& lookup);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_EXPR_EVAL_H_
