#include "vadalog/lexer.h"

#include <cctype>
#include <charconv>

namespace vadasa::vadalog {

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kIdent:
    case TokenKind::kVariable:
      return text;
    case TokenKind::kExternal:
      return "#" + text;
    case TokenKind::kInt:
      return std::to_string(int_value);
    case TokenKind::kDouble:
      return std::to_string(double_value);
    case TokenKind::kString:
      return "\"" + text + "\"";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kImplies: return ":-";
    case TokenKind::kAssign: return "=";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kAt: return "@";
    case TokenKind::kEof: return "<eof>";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  auto push = [&](TokenKind k) {
    Token t;
    t.kind = k;
    t.line = line;
    out.push_back(std::move(t));
  };
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%' || (c == '/' && i + 1 < src.size() && src[i + 1] == '/')) {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < src.size() && IsIdentChar(src[i])) ++i;
      Token t;
      t.text = std::string(src.substr(start, i - start));
      t.line = line;
      t.kind = (std::isupper(static_cast<unsigned char>(c)) || c == '_')
                   ? TokenKind::kVariable
                   : TokenKind::kIdent;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '#') {
      ++i;
      if (i >= src.size() || !IsIdentStart(src[i])) {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": '#' must start an external predicate name");
      }
      size_t start = i;
      while (i < src.size() && IsIdentChar(src[i])) ++i;
      Token t;
      t.kind = TokenKind::kExternal;
      t.text = std::string(src.substr(start, i - start));
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      bool is_double = false;
      if (i + 1 < src.size() && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_double = true;
        ++i;
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      }
      if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
        size_t j = i + 1;
        if (j < src.size() && (src[j] == '+' || src[j] == '-')) ++j;
        if (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) {
          is_double = true;
          i = j;
          while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
      }
      Token t;
      t.line = line;
      const std::string_view text = src.substr(start, i - start);
      if (is_double) {
        t.kind = TokenKind::kDouble;
        std::from_chars(text.data(), text.data() + text.size(), t.double_value);
      } else {
        t.kind = TokenKind::kInt;
        std::from_chars(text.data(), text.data() + text.size(), t.int_value);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < src.size()) {
        if (src[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        if (src[i] == '\\' && i + 1 < src.size()) {
          ++i;
          switch (src[i]) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            default: s += src[i];
          }
        } else {
          if (src[i] == '\n') ++line;
          s += src[i];
        }
        ++i;
      }
      if (!closed) {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": unterminated string literal");
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(s);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    auto two = [&](char next) {
      return i + 1 < src.size() && src[i + 1] == next;
    };
    switch (c) {
      case '(': push(TokenKind::kLParen); ++i; break;
      case ')': push(TokenKind::kRParen); ++i; break;
      case ',': push(TokenKind::kComma); ++i; break;
      case '.': push(TokenKind::kDot); ++i; break;
      case '@': push(TokenKind::kAt); ++i; break;
      case '+': push(TokenKind::kPlus); ++i; break;
      case '-': push(TokenKind::kMinus); ++i; break;
      case '*': push(TokenKind::kStar); ++i; break;
      case '/': push(TokenKind::kSlash); ++i; break;
      case ':':
        if (two('-')) {
          push(TokenKind::kImplies);
          i += 2;
        } else {
          return Status::ParseError("line " + std::to_string(line) +
                                    ": expected ':-' after ':'");
        }
        break;
      case '=':
        if (two('=')) {
          push(TokenKind::kEq);
          i += 2;
        } else {
          push(TokenKind::kAssign);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe);
          i += 2;
        } else {
          return Status::ParseError("line " + std::to_string(line) +
                                    ": expected '!=' after '!'");
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe);
          i += 2;
        } else {
          push(TokenKind::kLt);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe);
          i += 2;
        } else {
          push(TokenKind::kGt);
          ++i;
        }
        break;
      default:
        return Status::ParseError("line " + std::to_string(line) +
                                  ": unexpected character '" + std::string(1, c) + "'");
    }
  }
  push(TokenKind::kEof);
  return out;
}

}  // namespace vadasa::vadalog
