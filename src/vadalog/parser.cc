#include "vadalog/parser.h"

#include <optional>

#include "vadalog/lexer.h"

namespace vadasa::vadalog {

namespace {

std::optional<AggregateFunc> AggregateFuncFromName(const std::string& name) {
  if (name == "msum") return AggregateFunc::kSum;
  if (name == "mcount") return AggregateFunc::kCount;
  if (name == "mprod") return AggregateFunc::kProd;
  if (name == "mmin") return AggregateFunc::kMin;
  if (name == "mmax") return AggregateFunc::kMax;
  if (name == "munion") return AggregateFunc::kUnion;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!At(TokenKind::kEof)) {
      VADASA_RETURN_NOT_OK(ParseClause(&program));
    }
    return program;
  }

  Result<Atom> ParseSingleFact() {
    VADASA_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    if (At(TokenKind::kDot)) Advance();
    if (!At(TokenKind::kEof)) return Error("trailing input after fact");
    for (const Term& t : atom.args) {
      if (t.is_variable()) return Error("fact must be ground: " + atom.ToString());
    }
    return atom;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    const size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind k) const { return Cur().kind == k; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(Cur().line) + ": " + msg +
                              " (at '" + Cur().ToString() + "')");
  }
  Status Expect(TokenKind k, const char* what) {
    if (!At(k)) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Status ParseClause(Program* program) {
    if (At(TokenKind::kAt)) return ParseAnnotation(program);
    // A clause is a fact or a rule; both end with '.'.
    VADASA_ASSIGN_OR_RETURN(Rule rule, ParseRuleOrFact());
    if (rule.body.empty() && rule.conditions.empty() && rule.assignments.empty() &&
        rule.aggregates.empty() && !rule.is_egd) {
      // Headless bodies can't happen; a bodiless head of ground atoms is facts.
      bool all_ground = true;
      for (const Atom& a : rule.head) {
        for (const Term& t : a.args) {
          if (t.is_variable()) all_ground = false;
        }
      }
      if (!all_ground) {
        return Status::ParseError("non-ground fact: " + rule.ToString());
      }
      for (Atom& a : rule.head) program->facts.push_back(std::move(a));
      return Status::OK();
    }
    program->rules.push_back(std::move(rule));
    return Status::OK();
  }

  Status ParseAnnotation(Program* program) {
    Advance();  // '@'
    if (!At(TokenKind::kIdent)) return Error("expected annotation name after '@'");
    const std::string name = Cur().text;
    Advance();
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    std::vector<std::string> args;
    for (;;) {
      if (!At(TokenKind::kString) && !At(TokenKind::kIdent)) {
        return Error("expected string argument in annotation");
      }
      args.push_back(Cur().text);
      Advance();
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.'"));
    if (name == "input" && args.size() == 1) {
      program->inputs.push_back(args[0]);
    } else if (name == "output" && args.size() == 1) {
      program->outputs.push_back(args[0]);
    } else if (name == "bind" && args.size() == 2) {
      program->bindings.push_back(Binding{args[0], args[1]});
    } else {
      return Status::ParseError("unknown annotation @" + name + "/" +
                                std::to_string(args.size()));
    }
    return Status::OK();
  }

  Result<Rule> ParseRuleOrFact() {
    Rule rule;
    // EGD head: VAR '=' VAR ':-' ...
    if (At(TokenKind::kVariable) && Peek().kind == TokenKind::kAssign &&
        Peek(2).kind == TokenKind::kVariable && Peek(3).kind == TokenKind::kImplies) {
      rule.is_egd = true;
      rule.egd_lhs = Cur().text;
      Advance();
      Advance();
      rule.egd_rhs = Cur().text;
      Advance();
    } else {
      for (;;) {
        VADASA_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
        rule.head.push_back(std::move(atom));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (At(TokenKind::kDot)) {
      Advance();
      return rule;  // Fact(s).
    }
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kImplies, "':-' or '.'"));
    for (;;) {
      VADASA_RETURN_NOT_OK(ParseBodyItem(&rule));
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.'"));
    return rule;
  }

  Status ParseBodyItem(Rule* rule) {
    // Negated literal.
    if (At(TokenKind::kIdent) && Cur().text == "not" &&
        (Peek().kind == TokenKind::kIdent || Peek().kind == TokenKind::kExternal) &&
        Peek(2).kind == TokenKind::kLParen) {
      Advance();
      VADASA_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      rule->body.push_back(Literal{std::move(atom), /*negated=*/true});
      return Status::OK();
    }
    // Positive literal — unless what follows the closing paren is a
    // comparison operator, in which case `f(...)` was a function call on the
    // left of a condition (e.g. `contains(S, X) == false`); backtrack.
    if ((At(TokenKind::kIdent) || At(TokenKind::kExternal)) &&
        Peek().kind == TokenKind::kLParen) {
      const size_t saved = pos_;
      auto atom_result = ParseAtom();
      if (!atom_result.ok()) {
        // Not a flat atom (e.g. nested calls like `size(union(A,B)) > 1`):
        // fall through to expression parsing.
        pos_ = saved;
      } else {
        Atom atom = std::move(atom_result).value();
        switch (Cur().kind) {
        case TokenKind::kEq:
        case TokenKind::kNe:
        case TokenKind::kLt:
        case TokenKind::kLe:
        case TokenKind::kGt:
        case TokenKind::kGe:
        case TokenKind::kAssign:
            pos_ = saved;  // Re-parse as a condition below.
            break;
          default:
            if (Cur().kind == TokenKind::kIdent &&
                (Cur().text == "in" || Cur().text == "subset")) {
              pos_ = saved;
              break;
            }
            rule->body.push_back(Literal{std::move(atom), /*negated=*/false});
            return Status::OK();
        }
      }
    }
    // Assignment / aggregate: VAR '=' ...
    if (At(TokenKind::kVariable) && Peek().kind == TokenKind::kAssign) {
      const std::string target = Cur().text;
      Advance();
      Advance();
      if (At(TokenKind::kIdent)) {
        if (auto func = AggregateFuncFromName(Cur().text);
            func.has_value() && Peek().kind == TokenKind::kLParen) {
          return ParseAggregate(rule, target, *func);
        }
      }
      VADASA_ASSIGN_OR_RETURN(auto expr, ParseExpr());
      rule->assignments.push_back(Assignment{target, std::move(expr)});
      return Status::OK();
    }
    // Condition: expr CMP expr.
    VADASA_ASSIGN_OR_RETURN(auto lhs, ParseExpr());
    CompareOp op;
    switch (Cur().kind) {
      case TokenKind::kEq: op = CompareOp::kEq; break;
      case TokenKind::kAssign: op = CompareOp::kEq; break;
      case TokenKind::kNe: op = CompareOp::kNe; break;
      case TokenKind::kLt: op = CompareOp::kLt; break;
      case TokenKind::kLe: op = CompareOp::kLe; break;
      case TokenKind::kGt: op = CompareOp::kGt; break;
      case TokenKind::kGe: op = CompareOp::kGe; break;
      case TokenKind::kIdent:
        if (Cur().text == "in") {
          op = CompareOp::kIn;
          break;
        }
        if (Cur().text == "subset") {
          op = CompareOp::kSubset;
          break;
        }
        return Error("expected comparison operator");
      default:
        return Error("expected comparison operator");
    }
    Advance();
    VADASA_ASSIGN_OR_RETURN(auto rhs, ParseExpr());
    rule->conditions.push_back(Condition{op, std::move(lhs), std::move(rhs)});
    return Status::OK();
  }

  Status ParseAggregate(Rule* rule, const std::string& target, AggregateFunc func) {
    Advance();  // function name
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    AggregateSpec spec;
    spec.target = target;
    spec.func = func;
    if (!At(TokenKind::kLt)) {
      VADASA_ASSIGN_OR_RETURN(spec.value, ParseExpr());
      VADASA_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
    } else if (func != AggregateFunc::kCount) {
      return Error(AggregateFuncToString(func) + " requires a value argument");
    }
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kLt, "'<'"));
    if (!At(TokenKind::kGt)) {
      for (;;) {
        VADASA_ASSIGN_OR_RETURN(auto c, ParseExpr());
        spec.contributors.push_back(std::move(c));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kGt, "'>'"));
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    rule->aggregates.push_back(std::move(spec));
    return Status::OK();
  }

  Result<Atom> ParseAtom() {
    Atom atom;
    if (At(TokenKind::kExternal)) {
      atom.predicate = "#" + Cur().text;
    } else if (At(TokenKind::kIdent)) {
      atom.predicate = Cur().text;
    } else {
      return Error("expected predicate name");
    }
    Advance();
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    if (!At(TokenKind::kRParen)) {
      for (;;) {
        VADASA_ASSIGN_OR_RETURN(Term term, ParseTerm());
        atom.args.push_back(std::move(term));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    VADASA_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return atom;
  }

  Result<Term> ParseTerm() {
    switch (Cur().kind) {
      case TokenKind::kVariable: {
        Term t = Term::Variable(Cur().text);
        Advance();
        return t;
      }
      case TokenKind::kIdent: {
        if (Cur().text == "true" || Cur().text == "false") {
          Term t = Term::Constant(Value::Bool(Cur().text == "true"));
          Advance();
          return t;
        }
        Term t = Term::Constant(Value::String(Cur().text));
        Advance();
        return t;
      }
      case TokenKind::kString: {
        Term t = Term::Constant(Value::String(Cur().text));
        Advance();
        return t;
      }
      case TokenKind::kInt: {
        Term t = Term::Constant(Value::Int(Cur().int_value));
        Advance();
        return t;
      }
      case TokenKind::kDouble: {
        Term t = Term::Constant(Value::Double(Cur().double_value));
        Advance();
        return t;
      }
      case TokenKind::kMinus: {
        Advance();
        if (At(TokenKind::kInt)) {
          Term t = Term::Constant(Value::Int(-Cur().int_value));
          Advance();
          return t;
        }
        if (At(TokenKind::kDouble)) {
          Term t = Term::Constant(Value::Double(-Cur().double_value));
          Advance();
          return t;
        }
        return Error("expected number after '-'");
      }
      default:
        return Error("expected term");
    }
  }

  // Expression grammar: additive > multiplicative > unary > primary.
  Result<std::shared_ptr<Expr>> ParseExpr() { return ParseAdditive(); }

  Result<std::shared_ptr<Expr>> ParseAdditive() {
    VADASA_ASSIGN_OR_RETURN(auto lhs, ParseMultiplicative());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      const BinaryOp op =
          At(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      VADASA_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::shared_ptr<Expr>> ParseMultiplicative() {
    VADASA_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash)) {
      const BinaryOp op =
          At(TokenKind::kStar) ? BinaryOp::kMul : BinaryOp::kDiv;
      Advance();
      VADASA_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::shared_ptr<Expr>> ParseUnary() {
    if (At(TokenKind::kMinus)) {
      Advance();
      VADASA_ASSIGN_OR_RETURN(auto inner, ParseUnary());
      return Expr::Binary(BinaryOp::kSub, Expr::Const(Value::Int(0)),
                          std::move(inner));
    }
    return ParsePrimary();
  }

  Result<std::shared_ptr<Expr>> ParsePrimary() {
    switch (Cur().kind) {
      case TokenKind::kInt: {
        auto e = Expr::Const(Value::Int(Cur().int_value));
        Advance();
        return e;
      }
      case TokenKind::kDouble: {
        auto e = Expr::Const(Value::Double(Cur().double_value));
        Advance();
        return e;
      }
      case TokenKind::kString: {
        auto e = Expr::Const(Value::String(Cur().text));
        Advance();
        return e;
      }
      case TokenKind::kVariable: {
        auto e = Expr::Var(Cur().text);
        Advance();
        return e;
      }
      case TokenKind::kLParen: {
        Advance();
        VADASA_ASSIGN_OR_RETURN(auto e, ParseExpr());
        VADASA_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        return e;
      }
      case TokenKind::kIdent: {
        const std::string name = Cur().text;
        if (name == "true" || name == "false") {
          Advance();
          return Expr::Const(Value::Bool(name == "true"));
        }
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          Advance();
          std::vector<std::shared_ptr<Expr>> args;
          if (!At(TokenKind::kRParen)) {
            for (;;) {
              VADASA_ASSIGN_OR_RETURN(auto a, ParseExpr());
              args.push_back(std::move(a));
              if (At(TokenKind::kComma)) {
                Advance();
                continue;
              }
              break;
            }
          }
          VADASA_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
          return Expr::Call(name, std::move(args));
        }
        // Bare lowercase identifier: a symbol constant.
        auto e = Expr::Const(Value::String(name));
        Advance();
        return e;
      }
      default:
        return Error("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(std::string_view source) {
  VADASA_ASSIGN_OR_RETURN(auto tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<Atom> ParseFact(std::string_view text) {
  VADASA_ASSIGN_OR_RETURN(auto tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseSingleFact();
}

}  // namespace vadasa::vadalog
