#ifndef VADASA_VADALOG_LEXER_H_
#define VADASA_VADALOG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace vadasa::vadalog {

/// Token categories of the Vadalog dialect.
enum class TokenKind {
  kIdent,      ///< lowercase-initial identifier (predicate / symbol constant)
  kVariable,   ///< uppercase- or '_'-initial identifier
  kExternal,   ///< '#' + identifier (external predicate)
  kInt,
  kDouble,
  kString,     ///< double-quoted
  kLParen,
  kRParen,
  kComma,
  kDot,
  kImplies,    ///< :-
  kAssign,     ///< =
  kEq,         ///< ==
  kNe,         ///< !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAt,         ///< @
  kEof,
};

/// One lexed token with its source line for diagnostics.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     ///< Identifier / string payload.
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 0;

  std::string ToString() const;
};

/// Tokenizes Vadalog source. Comments run from '%' or "//" to end of line.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_LEXER_H_
