#ifndef VADASA_VADALOG_DATABASE_H_
#define VADASA_VADALOG_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace vadasa::vadalog {

/// Globally unique id of a fact within a Database (insertion order).
using FactId = uint32_t;
inline constexpr FactId kInvalidFactId = 0xffffffff;

/// Why a fact exists: asserted (EDB) or derived by a rule from support facts.
struct Provenance {
  int rule_index = -1;          ///< -1 for asserted facts.
  std::vector<FactId> support;  ///< Body facts that justified the derivation.
};

/// A single stored fact: predicate + ground row.
struct Fact {
  std::string predicate;
  std::vector<Value> row;

  std::string ToString() const;
};

/// All rows of one predicate, with a hash index for O(1) duplicate checks and
/// lazily built per-column hash indexes for joins.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  const std::vector<Value>& row(size_t i) const { return rows_[i]; }
  FactId fact_id(size_t i) const { return fact_ids_[i]; }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  /// Returns the local row index, or -1 if absent.
  int64_t Find(const std::vector<Value>& row) const;

  /// Inserts if new; returns (local index, inserted?).
  std::pair<size_t, bool> Insert(std::vector<Value> row, FactId id);

  /// Row indices whose column `col` strictly equals `v` (hash-indexed).
  const std::vector<uint32_t>& RowsWithValue(size_t col, const Value& v) const;

  /// Invalidate indexes (used after global null substitution).
  void RebuildIndexes();

 private:
  struct RowKey {
    size_t hash;
    uint32_t index;
  };

  size_t arity_;
  std::vector<std::vector<Value>> rows_;
  std::vector<FactId> fact_ids_;
  // Dedup index: row hash -> candidate row indices.
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  // Join indexes, built on demand per column: value hash -> row indices.
  mutable std::vector<std::unordered_map<size_t, std::vector<uint32_t>>> col_index_;
  mutable std::vector<size_t> col_indexed_upto_;
};

/// The extensional + derived-extensional store of a reasoning task, with
/// per-fact provenance for full explainability (desideratum (vi)).
class Database {
 public:
  Database() = default;

  /// Adds a fact. No-op (returning the existing id) if already present.
  /// `prov` records how it was derived; pass {} for asserted facts.
  FactId AddFact(const std::string& predicate, std::vector<Value> row,
                 Provenance prov = {});

  bool Contains(const std::string& predicate, const std::vector<Value>& row) const;

  /// Number of distinct facts.
  size_t size() const { return facts_.size(); }

  /// The relation for `predicate`, or nullptr if no fact of it exists.
  const Relation* relation(const std::string& predicate) const;

  /// All rows of `predicate` (empty if absent).
  const std::vector<std::vector<Value>>& Rows(const std::string& predicate) const;

  /// Predicates present in the database, sorted.
  std::vector<std::string> Predicates() const;

  const Fact& fact(FactId id) const { return facts_[id]; }
  const Provenance& provenance(FactId id) const { return provenance_[id]; }

  /// Applies a substitution of labelled nulls (from EGD unification) to every
  /// fact, merging facts that become equal. Indexes are rebuilt.
  void SubstituteNulls(const std::unordered_map<uint64_t, Value>& subst);

  /// Allocates a fresh labelled-null label, unique within this database.
  uint64_t FreshNullLabel() { return next_null_label_++; }

  /// Pretty-prints all facts of a predicate, sorted, one per line.
  std::string DumpPredicate(const std::string& predicate) const;

 private:
  std::unordered_map<std::string, Relation> relations_;
  std::vector<Fact> facts_;            // by FactId
  std::vector<Provenance> provenance_; // by FactId
  uint64_t next_null_label_ = 1;
  static const std::vector<std::vector<Value>> kEmptyRows;
};

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_DATABASE_H_
