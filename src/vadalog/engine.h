#ifndef VADASA_VADALOG_ENGINE_H_
#define VADASA_VADALOG_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "vadalog/analysis.h"
#include "vadalog/ast.h"
#include "vadalog/database.h"
#include "vadalog/externals.h"

namespace vadasa::vadalog {

/// What to do when an EGD equates two distinct constants.
enum class EgdMode {
  kFail,     ///< Abort the chase with Status::EgdViolation.
  kCollect,  ///< Record the violation and continue (human-in-the-loop mode).
};

/// Knobs of the chase-based evaluation.
struct EngineOptions {
  /// Hard cap on semi-naive rounds per stratum (termination guard).
  size_t max_rounds = 100000;
  /// Hard cap on total facts (termination guard for non-terminating chases).
  size_t max_facts = 50'000'000;
  /// If true, an existential rule does not fire when a fact already
  /// satisfying the head exists (restricted-chase check). If false, a pure
  /// Skolem chase with memoized nulls is used.
  bool restricted_chase = true;
  /// Whether to remember body-fact support for each derivation.
  bool track_provenance = true;
  /// Refuse to run programs that are not warded.
  bool require_warded = false;
  EgdMode egd_mode = EgdMode::kFail;
};

/// Counters reported by a chase run.
struct RunStats {
  size_t rounds = 0;
  size_t facts_derived = 0;
  size_t nulls_created = 0;
  size_t egd_substitutions = 0;
  size_t action_invocations = 0;
  /// Per-rule firing counts: rule_firings[i] is the number of complete body
  /// bindings rule i reached emission with (program order). Sized to the
  /// program's rule count on every run.
  std::vector<size_t> rule_firings;
  /// Time spent in the restricted-chase termination check (HeadSatisfied).
  /// Accrued only while obs tracing is enabled — the check sits on the
  /// existential hot path and is not timed in untraced runs (stays 0).
  double termination_check_seconds = 0.0;
  /// EGD constant-vs-constant violations (EgdMode::kCollect only).
  std::vector<std::string> egd_violations;
};

/// The reasoning core: a semi-naive, chase-based evaluator for the Vadalog
/// dialect — stratified negation, existentials as labelled nulls, EGDs with
/// null unification, monotonic aggregations with contributor semantics, and
/// external predicates/actions.
class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(options) {}

  ExternalRegistry* externals() { return &externals_; }

  /// Runs the program to fixpoint against `db` (facts are added in place).
  /// Program facts are asserted first.
  Result<RunStats> Run(const Program& program, Database* db);

 private:
  EngineOptions options_;
  ExternalRegistry externals_;
};

/// Convenience: parse + run a program on a database.
Result<RunStats> RunSource(const std::string& source, Database* db,
                           Engine* engine);

/// For monotonic-aggregate output predicates: groups rows of `predicate` by
/// all columns except `value_col` and keeps, per group, only the row whose
/// value column is extremal (max if `take_max`, else min). This selects the
/// *final* value of the monotone stream emitted during the chase.
std::vector<std::vector<Value>> FinalAggregateRows(const Database& db,
                                                   const std::string& predicate,
                                                   size_t value_col, bool take_max);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_ENGINE_H_
