#ifndef VADASA_VADALOG_EXPLAIN_H_
#define VADASA_VADALOG_EXPLAIN_H_

#include <string>

#include "vadalog/ast.h"
#include "vadalog/database.h"

namespace vadasa::vadalog {

/// Renders the derivation tree of a fact as an indented text explanation —
/// the "full explainability by logic entailment" the paper claims
/// (desideratum (vi)). Asserted facts print as `[asserted]`; derived facts
/// show the rule that produced them and, recursively, their support facts.
///
/// `max_depth` bounds recursion (cyclic provenance cannot occur because
/// support facts always predate the derived fact, but deep chains are
/// truncated with "...").
std::string ExplainFact(const Database& db, const Program& program, FactId id,
                        int max_depth = 8);

/// Finds the fact id of a ground atom; kInvalidFactId if absent.
FactId FindFact(const Database& db, const std::string& predicate,
                const std::vector<Value>& row);

/// Renders the derivation DAG of a fact in Graphviz DOT: facts are nodes,
/// derivations are edges labelled by rule. Shared sub-derivations appear
/// once (it is a DAG, not a tree). For audit artifacts and debugging.
std::string ExplainFactDot(const Database& db, const Program& program, FactId id);

/// Renders the derivation tree as JSON:
///   {"fact": "...", "rule": "..."|null, "support": [ ... ]}
/// Depth-limited like ExplainFact.
std::string ExplainFactJson(const Database& db, const Program& program, FactId id,
                            int max_depth = 8);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_EXPLAIN_H_
