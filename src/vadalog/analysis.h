#ifndef VADASA_VADALOG_ANALYSIS_H_
#define VADASA_VADALOG_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "vadalog/ast.h"

namespace vadasa::vadalog {

/// Per-rule safety diagnostics + predicate stratification of a program.
struct StratificationResult {
  /// Stratum of each predicate occurring in the program (0-based).
  std::map<std::string, int> stratum;
  /// Rules grouped by the stratum of their head predicate, ascending.
  std::vector<std::vector<int>> rules_by_stratum;
  int num_strata = 0;
};

/// Checks rule safety:
///  - negated-literal variables must occur in a positive literal,
///  - condition/assignment/aggregate inputs must be bound (by positive
///    literals or earlier assignments),
///  - EGD head variables must be body-bound.
/// Head variables that remain unbound are existential (allowed for TGDs).
Status CheckSafety(const Program& program);

/// Computes a stratification where every negated dependency strictly
/// descends. Recursion through positive literals and through monotonic
/// aggregates is allowed (Vadalog semantics). Fails if negation is cyclic.
Result<StratificationResult> Stratify(const Program& program);

/// A (predicate, argument-index) position.
struct Position {
  std::string predicate;
  size_t index;
  bool operator<(const Position& o) const {
    return predicate < o.predicate || (predicate == o.predicate && index < o.index);
  }
};

/// Result of the wardedness analysis (the syntactic fragment giving Vadalog
/// its PTIME data-complexity guarantee, Section 3).
struct WardednessReport {
  /// Positions into which labelled nulls can propagate.
  std::set<Position> affected_positions;

  struct RuleReport {
    bool warded = true;
    /// Harmful body variables that also appear in the head.
    std::vector<std::string> dangerous_vars;
    /// Index of the body atom acting as ward (-1 if none needed).
    int ward = -1;
    std::string diagnostic;
  };
  std::vector<RuleReport> rules;
  bool program_warded = true;
};

/// Computes affected positions by fixpoint and checks every rule's dangerous
/// variables are confined to a single ward atom that shares only harmless
/// variables with the rest of the body.
WardednessReport AnalyzeWardedness(const Program& program);

}  // namespace vadasa::vadalog

#endif  // VADASA_VADALOG_ANALYSIS_H_
